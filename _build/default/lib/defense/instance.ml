type scheme = Aslr | Isr | Got_shuffle | Heap

let pp_scheme ppf s =
  Format.pp_print_string ppf
    (match s with Aslr -> "aslr" | Isr -> "isr" | Got_shuffle -> "got" | Heap -> "heap")

let scheme_of_string = function
  | "aslr" -> Some Aslr
  | "isr" -> Some Isr
  | "got" -> Some Got_shuffle
  | "heap" -> Some Heap
  | _ -> None

let all_schemes = [ Aslr; Isr; Got_shuffle; Heap ]

type t = { scheme : scheme; keyspace : Keyspace.t; mutable key : int; mutable epoch : int }

type outcome = Intrusion | Crash

let create ?(scheme = Aslr) keyspace prng =
  { scheme; keyspace; key = Keyspace.random_key keyspace prng; epoch = 0 }

let scheme t = t.scheme
let keyspace t = t.keyspace
let epoch t = t.epoch
let key t = t.key

let probe t ~guess =
  if not (Keyspace.contains t.keyspace guess) then
    invalid_arg "Instance.probe: guess outside the key space";
  if guess = t.key then Intrusion else Crash

let rekey t prng =
  t.key <- Keyspace.random_key t.keyspace prng;
  t.epoch <- t.epoch + 1

let set_key t key =
  if not (Keyspace.contains t.keyspace key) then
    invalid_arg "Instance.set_key: key outside the key space";
  t.key <- key;
  t.epoch <- t.epoch + 1

let recover t = t.epoch <- t.epoch + 1

let pp ppf t =
  Format.fprintf ppf "%a instance (%a, epoch %d)" pp_scheme t.scheme Keyspace.pp t.keyspace
    t.epoch
