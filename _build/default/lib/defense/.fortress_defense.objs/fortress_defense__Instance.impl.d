lib/defense/instance.ml: Format Keyspace
