lib/defense/keyspace.ml: Format Fortress_util
