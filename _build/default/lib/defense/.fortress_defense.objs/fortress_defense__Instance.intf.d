lib/defense/instance.mli: Format Fortress_util Keyspace
