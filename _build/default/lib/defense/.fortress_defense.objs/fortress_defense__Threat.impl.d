lib/defense/threat.ml: Float Fortress_util Keyspace List Printf String
