lib/defense/keyspace.mli: Format Fortress_util
