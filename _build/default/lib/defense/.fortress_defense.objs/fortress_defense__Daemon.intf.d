lib/defense/daemon.mli: Fortress_sim Fortress_util Instance
