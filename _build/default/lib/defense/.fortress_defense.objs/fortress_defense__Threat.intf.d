lib/defense/threat.mli: Fortress_util Keyspace
