lib/defense/daemon.ml: Fortress_sim Instance Option Printf String
