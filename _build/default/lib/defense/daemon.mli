(** A forking server daemon fronting a randomized executable.

    De-randomization attacks presuppose a daemon that forks a fresh child
    whenever the working child crashes (the crash is assumed benign), so the
    attacker can keep probing. Each accepted connection is served by its own
    child; a wrong-key probe crashes only that child and closes only that
    connection — the attacker's observable. A correct-key probe turns the
    daemon compromised. Legitimate requests are echoed. *)

type t

type request = Probe of int | Legit of string

val encode_request : request -> string
val decode_request : string -> request option
(** Wire format: ["probe:<int>"] or ["req:<body>"]. *)

val create :
  ?restart_delay:float -> Fortress_sim.Engine.t -> instance:Instance.t -> t
(** [restart_delay] (default 0.1) is the fork lag after a child crash;
    during it the connection that crashed is already closed, so it does not
    gate the attacker, but it is visible in fork counters. *)

val instance : t -> Instance.t
val compromised : t -> bool
val crash_count : t -> int
(** Child crashes caused by wrong-key probes so far. *)

val fork_count : t -> int
val request_count : t -> int
(** Legitimate requests served. *)

val accept :
  t -> on_reply:(string -> unit) -> on_crash_observed:(unit -> unit) ->
  (request -> unit) * (unit -> bool)
(** [accept t ~on_reply ~on_crash_observed] opens a logical connection and
    returns [(submit, is_open)]. [submit] delivers a request to the serving
    child after the daemon's connection latency; replies come back through
    [on_reply] and a child crash reaches the client through
    [on_crash_observed] — the close-on-crash channel. After a crash the
    connection is dead: further submissions are dropped. *)

val rekey : t -> Fortress_util.Prng.t -> unit
(** Proactive obfuscation of the underlying instance. Clears the
    compromised flag: the attacker's foothold dies with the old
    executable. *)

val recover : t -> unit
(** Proactive recovery: same key, compromised flag cleared. *)
