(** The space of randomization keys.

    The efficacy of every randomization defence in the paper reduces to the
    number of possible keys chi (the entropy of the randomization). PaX ASLR
    on 32-bit hardware gives 16 bits; the paper's evaluation uses
    chi = 2^16. *)

type t

val of_entropy_bits : int -> t
(** [of_entropy_bits b] has [2^b] keys. Raises [Invalid_argument] unless
    [1 <= b <= 30]. *)

val of_size : int -> t
(** A key space with exactly [n >= 2] keys (not necessarily a power of
    two). *)

val size : t -> int
val entropy_bits : t -> float
(** log2 of the size. *)

val contains : t -> int -> bool
(** Keys are the integers [0, size). *)

val random_key : t -> Fortress_util.Prng.t -> int
val pax_aslr_32bit : t
(** The paper's default: 2^16 keys. *)

val pp : Format.formatter -> t -> unit
