(** Link latency and loss models. *)

type t = {
  base : float;  (** minimum one-way delay *)
  jitter : float;  (** uniform extra delay in [0, jitter) *)
  drop : float;  (** independent loss probability per message *)
}

val default : t
(** 1.0 base, 0.2 jitter, no loss — arbitrary simulation units, small
    relative to the unit time-step used by obfuscation schedules. *)

val constant : float -> t
val lossy : t -> drop:float -> t
val sample : t -> Fortress_util.Prng.t -> float option
(** [sample t prng] is [None] when the message is dropped, otherwise the
    sampled delay. *)
