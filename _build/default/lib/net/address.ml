type t = int

let make i = i
let id t = t
let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let to_string t = Printf.sprintf "n%d" t
let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
