module Engine = Fortress_sim.Engine

type t = {
  engine : Engine.t;
  latency : float;
  on_server_receive : t -> string -> unit;
  on_client_receive : t -> string -> unit;
  on_client_close : unit -> unit;
  on_server_close : unit -> unit;
  mutable open_ : bool;
  mutable in_flight : int;
}

let establish ?(latency = 1.0) ~on_server_receive ~on_client_receive ~on_client_close
    ?(on_server_close = fun () -> ()) engine =
  {
    engine;
    latency;
    on_server_receive;
    on_client_receive;
    on_client_close;
    on_server_close;
    open_ = true;
    in_flight = 0;
  }

let transmit t deliver payload =
  if t.open_ then begin
    t.in_flight <- t.in_flight + 1;
    ignore
      (Engine.schedule t.engine ~delay:t.latency (fun () ->
           t.in_flight <- t.in_flight - 1;
           if t.open_ then deliver t payload))
  end

let client_send t payload = transmit t (fun t p -> t.on_server_receive t p) payload
let server_send t payload = transmit t (fun t p -> t.on_client_receive t p) payload

let close_with t notify =
  if t.open_ then begin
    t.open_ <- false;
    ignore (Engine.schedule t.engine ~delay:t.latency notify)
  end

let close_server t = close_with t t.on_client_close
let close_client t = close_with t t.on_server_close
let is_open t = t.open_
let messages_in_flight t = t.in_flight
