lib/net/network.mli: Address Fortress_sim Latency
