lib/net/conn.ml: Fortress_sim
