lib/net/address.ml: Format Hashtbl Int Map Printf Set
