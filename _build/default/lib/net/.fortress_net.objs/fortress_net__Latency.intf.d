lib/net/latency.mli: Fortress_util
