lib/net/address.mli: Format Map Set
