lib/net/network.ml: Address Fortress_sim Hashtbl Latency List Printf
