lib/net/conn.mli: Fortress_sim
