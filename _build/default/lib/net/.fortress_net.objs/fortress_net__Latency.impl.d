lib/net/latency.ml: Fortress_util
