(** TCP-like point-to-point connections.

    De-randomization attacks (Shacham et al. 2004; Sovarel et al. 2005) rely
    on one observable: when the probed child process crashes, the attacker's
    TCP connection to it closes. This module models exactly that — a
    bidirectional byte-message channel where closing one end notifies the
    peer after the link latency. The FORTRESS proxy tier removes this
    observable by terminating client connections at the proxy. *)

type t

val establish :
  ?latency:float ->
  on_server_receive:(t -> string -> unit) ->
  on_client_receive:(t -> string -> unit) ->
  on_client_close:(unit -> unit) ->
  ?on_server_close:(unit -> unit) ->
  Fortress_sim.Engine.t ->
  t
(** Create an open connection. [latency] (default 1.0) delays each message
    and each close notification. [on_client_close] fires at the client when
    the server end closes — the attacker's crash observation. *)

val client_send : t -> string -> unit
(** Deliver to the server end after the latency; silently lost if the
    connection closed in flight. *)

val server_send : t -> string -> unit

val close_server : t -> unit
(** Close from the server side (e.g. the serving child crashed). The client
    learns via [on_client_close]. Idempotent. *)

val close_client : t -> unit
val is_open : t -> bool
val messages_in_flight : t -> int
