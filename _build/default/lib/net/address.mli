(** Node addresses on the simulated network. *)

type t

val make : int -> t
(** Addresses are small integers assigned by {!Network.register}; [make] is
    exposed for tests. *)

val id : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
