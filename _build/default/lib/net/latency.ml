type t = { base : float; jitter : float; drop : float }

let default = { base = 1.0; jitter = 0.2; drop = 0.0 }
let constant base = { base; jitter = 0.0; drop = 0.0 }
let lossy t ~drop = { t with drop }

let sample t prng =
  if t.drop > 0.0 && Fortress_util.Prng.bernoulli prng ~p:t.drop then None
  else
    let extra = if t.jitter > 0.0 then Fortress_util.Prng.float prng *. t.jitter else 0.0 in
    Some (t.base +. extra)
