lib/replication/pb.ml: Array Dsm Fortress_crypto Fortress_net Fortress_sim Fortress_util Fun Hashtbl Int64 List Option Printf Storage String
