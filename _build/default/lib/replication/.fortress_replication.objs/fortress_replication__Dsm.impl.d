lib/replication/dsm.ml: Fortress_crypto
