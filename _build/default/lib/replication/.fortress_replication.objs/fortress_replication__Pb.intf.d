lib/replication/pb.mli: Dsm Fortress_crypto Fortress_net Fortress_sim Storage
