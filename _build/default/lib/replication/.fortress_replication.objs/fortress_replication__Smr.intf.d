lib/replication/smr.mli: Dsm Fortress_crypto Fortress_net Fortress_sim
