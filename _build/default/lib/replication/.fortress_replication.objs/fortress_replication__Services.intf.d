lib/replication/services.mli: Dsm
