lib/replication/storage.ml: Bytes Char Fortress_crypto Hashtbl List Printf String
