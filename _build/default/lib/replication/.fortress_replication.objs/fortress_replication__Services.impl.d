lib/replication/services.ml: Dsm Fun Int64 List Map Printf String
