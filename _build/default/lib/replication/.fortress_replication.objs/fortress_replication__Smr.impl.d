lib/replication/smr.ml: Array Dsm Fortress_crypto Fortress_net Fortress_sim Fortress_util Fun Hashtbl Int List Option Printf Set
