lib/replication/storage.mli:
