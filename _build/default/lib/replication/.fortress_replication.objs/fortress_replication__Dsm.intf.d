lib/replication/dsm.mli:
