module Sha256 = Fortress_crypto.Sha256

type record = { mutable payload : string; checksum : string }

type t = { blobs : (string, record) Hashtbl.t; mutable write_count : int }

let create () = { blobs = Hashtbl.create 32; write_count = 0 }

let write t ~key payload =
  t.write_count <- t.write_count + 1;
  Hashtbl.replace t.blobs key { payload; checksum = Sha256.digest payload }

let read t ~key =
  match Hashtbl.find_opt t.blobs key with
  | Some r when String.equal (Sha256.digest r.payload) r.checksum -> Some r.payload
  | Some _ | None -> None

let mem t ~key = read t ~key <> None
let delete t ~key = Hashtbl.remove t.blobs key

let keys t =
  Hashtbl.fold (fun key _ acc -> if mem t ~key then key :: acc else acc) t.blobs []
  |> List.sort String.compare

let corrupt t ~key =
  match Hashtbl.find_opt t.blobs key with
  | None -> ()
  | Some r ->
      if String.length r.payload = 0 then r.payload <- "\x00"
      else begin
        let b = Bytes.of_string r.payload in
        Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
        r.payload <- Bytes.to_string b
      end

let wipe t = Hashtbl.reset t.blobs
let writes t = t.write_count

module Log = struct
  type store = t

  type t = { store : store; name : string; mutable next : int }

  let entry_key name i = Printf.sprintf "log:%s:%06d" name i

  let attach store ~name =
    (* recover the next index: first missing-or-damaged slot *)
    let rec scan i = if mem store ~key:(entry_key name i) then scan (i + 1) else i in
    { store; name; next = scan 0 }

  let append t payload =
    write t.store ~key:(entry_key t.name t.next) payload;
    t.next <- t.next + 1

  let length t = t.next

  let entries t =
    (* stop at the first hole: later entries are untrustworthy *)
    let rec collect i acc =
      if i >= t.next then List.rev acc
      else
        match read t.store ~key:(entry_key t.name i) with
        | Some payload -> collect (i + 1) (payload :: acc)
        | None -> List.rev acc
    in
    collect 0 []

  let truncate t =
    for i = 0 to t.next - 1 do
      delete t.store ~key:(entry_key t.name i)
    done;
    t.next <- 0
end
