module type SERVICE = sig
  type state

  val name : string
  val init : state
  val apply : state -> entropy:int64 -> string -> state * string
  val snapshot : state -> string
  val restore : string -> state
end

type t = (module SERVICE)

module Instance = struct
  type instance =
    | Inst : (module SERVICE with type state = 's) * 's ref -> instance

  let create (module S : SERVICE) = Inst ((module S), ref S.init)

  let name (Inst ((module S), _)) = S.name

  let apply (Inst ((module S), state)) ~entropy cmd =
    let next, response = S.apply !state ~entropy cmd in
    state := next;
    response

  let snapshot (Inst ((module S), state)) = S.snapshot !state
  let restore (Inst ((module S), state)) s = state := S.restore s
  let digest inst = Fortress_crypto.Sha256.digest (snapshot inst)
  let reset (Inst ((module S), state)) = state := S.init
end
