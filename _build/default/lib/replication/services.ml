module Smap = Map.Make (String)

let words s = String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let valid_word w =
  w <> ""
  && not (String.exists (fun c -> c = ' ' || c = '=' || c = '\n') w)

(* Canonical serialization shared by kv and bank: sorted "k=v" lines. *)
let snapshot_map to_string m =
  Smap.bindings m
  |> List.map (fun (k, v) -> k ^ "=" ^ to_string v)
  |> String.concat "\n"

let restore_map of_string s =
  if s = "" then Smap.empty
  else
    String.split_on_char '\n' s
    |> List.fold_left
         (fun acc line ->
           match String.index_opt line '=' with
           | None -> invalid_arg "Services: corrupt snapshot line"
           | Some i ->
               let k = String.sub line 0 i in
               let v = String.sub line (i + 1) (String.length line - i - 1) in
               Smap.add k (of_string v) acc)
         Smap.empty

module Kv = struct
  type state = string Smap.t

  let name = "kv"
  let init = Smap.empty

  let apply state ~entropy:_ cmd =
    match words cmd with
    | [ "put"; k; v ] when valid_word k && valid_word v -> (Smap.add k v state, "ok")
    | [ "get"; k ] -> (
        match Smap.find_opt k state with
        | Some v -> (state, v)
        | None -> (state, "err:not_found"))
    | [ "del"; k ] ->
        if Smap.mem k state then (Smap.remove k state, "ok") else (state, "err:not_found")
    | [ "cas"; k; old_v; new_v ] when valid_word new_v -> (
        match Smap.find_opt k state with
        | Some v when v = old_v -> (Smap.add k new_v state, "ok")
        | Some _ -> (state, "err:mismatch")
        | None -> (state, "err:not_found"))
    | [ "size" ] -> (state, string_of_int (Smap.cardinal state))
    | _ -> (state, "err:bad_command")

  let snapshot state = snapshot_map Fun.id state
  let restore s = restore_map Fun.id s
end

module Counter = struct
  type state = int

  let name = "counter"
  let init = 0

  let apply state ~entropy:_ cmd =
    match words cmd with
    | [ "incr" ] -> (state + 1, string_of_int (state + 1))
    | [ "decr" ] -> (state - 1, string_of_int (state - 1))
    | [ "add"; n ] -> (
        match int_of_string_opt n with
        | Some n -> (state + n, string_of_int (state + n))
        | None -> (state, "err:bad_command"))
    | [ "read" ] -> (state, string_of_int state)
    | _ -> (state, "err:bad_command")

  let snapshot = string_of_int

  let restore s =
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg "Counter: corrupt snapshot"
end

module Bank = struct
  type state = int Smap.t

  let name = "bank"
  let init = Smap.empty

  let apply state ~entropy:_ cmd =
    let balance a = Smap.find_opt a state in
    match words cmd with
    | [ "open"; a ] when valid_word a ->
        if Smap.mem a state then (state, "err:exists") else (Smap.add a 0 state, "ok")
    | [ "deposit"; a; n ] -> (
        match (balance a, int_of_string_opt n) with
        | Some b, Some n when n >= 0 -> (Smap.add a (b + n) state, "ok")
        | None, _ -> (state, "err:no_account")
        | _, _ -> (state, "err:bad_command"))
    | [ "withdraw"; a; n ] -> (
        match (balance a, int_of_string_opt n) with
        | Some b, Some n when n >= 0 ->
            if b >= n then (Smap.add a (b - n) state, "ok") else (state, "err:insufficient")
        | None, _ -> (state, "err:no_account")
        | _, _ -> (state, "err:bad_command"))
    | [ "balance"; a ] -> (
        match balance a with
        | Some b -> (state, string_of_int b)
        | None -> (state, "err:no_account"))
    | [ "transfer"; a; b; n ] -> (
        match (balance a, balance b, int_of_string_opt n) with
        | Some ba, Some _, Some n when n >= 0 ->
            if ba >= n then
              let state = Smap.add a (ba - n) state in
              let bb = Smap.find b state in
              (Smap.add b (bb + n) state, "ok")
            else (state, "err:insufficient")
        | None, _, _ | _, None, _ -> (state, "err:no_account")
        | _, _, _ -> (state, "err:bad_command"))
    | _ -> (state, "err:bad_command")

  let snapshot state = snapshot_map string_of_int state

  let restore s =
    restore_map
      (fun v ->
        match int_of_string_opt v with
        | Some n -> n
        | None -> invalid_arg "Bank: corrupt snapshot")
      s
end

module Lottery = struct
  type state = { draws : int; last : int }

  let name = "lottery"
  let init = { draws = 0; last = 0 }

  let apply state ~entropy cmd =
    match words cmd with
    | [ "draw"; bound ] -> (
        match int_of_string_opt bound with
        | Some b when b > 0 ->
            (* nondeterministic: depends on the executing node's entropy *)
            let v = Int64.to_int (Int64.rem (Int64.logand entropy Int64.max_int) (Int64.of_int b)) in
            ({ draws = state.draws + 1; last = v }, string_of_int v)
        | _ -> (state, "err:bad_command"))
    | [ "count" ] -> (state, string_of_int state.draws)
    | [ "last" ] -> (state, string_of_int state.last)
    | _ -> (state, "err:bad_command")

  let snapshot state = Printf.sprintf "%d %d" state.draws state.last

  let restore s =
    match words s |> List.map int_of_string_opt with
    | [ Some draws; Some last ] -> { draws; last }
    | _ -> invalid_arg "Lottery: corrupt snapshot"
end

module Session = struct
  (* A login service: the archetypal nondeterministic state machine — the
     token minted at login must be unguessable, i.e. derived from entropy.
     Under primary-backup the primary's token replicates verbatim; under
     SMR each replica would mint a different token and the replies never
     agree: the paper's motivating scenario with a security flavour. *)
  type state = string Smap.t (* user -> live token *)

  let name = "session"
  let init = Smap.empty

  let token_of_entropy entropy = Printf.sprintf "%016Lx" entropy

  let apply state ~entropy cmd =
    match words cmd with
    | [ "login"; user ] when valid_word user ->
        let token = token_of_entropy entropy in
        (Smap.add user token state, token)
    | [ "check"; user; token ] -> (
        match Smap.find_opt user state with
        | Some live when String.equal live token -> (state, "valid")
        | Some _ | None -> (state, "err:invalid"))
    | [ "logout"; user ] ->
        if Smap.mem user state then (Smap.remove user state, "ok")
        else (state, "err:no_session")
    | [ "sessions" ] -> (state, string_of_int (Smap.cardinal state))
    | _ -> (state, "err:bad_command")

  let snapshot state = snapshot_map Fun.id state
  let restore s = restore_map Fun.id s
end

let kv : Dsm.t = (module Kv)
let counter : Dsm.t = (module Counter)
let bank : Dsm.t = (module Bank)
let lottery : Dsm.t = (module Lottery)
let session : Dsm.t = (module Session)

let all =
  [ ("kv", kv); ("counter", counter); ("bank", bank); ("lottery", lottery);
    ("session", session) ]
let find name = List.assoc_opt name all
