(** Simulated stable storage.

    Proactive recovery reboots a node from read-only media and reloads its
    service state from local stable storage (Castro-Liskov), falling back
    to peer state transfer only when the local copy is stale or damaged.
    This module models that storage: a keyed blob store whose writes are
    crash-atomic (a record is either fully present or absent — no torn
    writes) and checksummed, so corruption injected by tests or by an
    attacker is always detected rather than silently loaded. *)

type t

val create : unit -> t

val write : t -> key:string -> string -> unit
(** Atomically replace the record under [key]. *)

val read : t -> key:string -> string option
(** [None] when the key is absent {e or} its checksum fails — damaged
    records are indistinguishable from missing ones, which is exactly how
    recovery code must treat them. *)

val mem : t -> key:string -> bool
(** Present {e and} intact. *)

val delete : t -> key:string -> unit
val keys : t -> string list
(** All keys with intact records, sorted. *)

val corrupt : t -> key:string -> unit
(** Damage the record in place (flips a byte past the checksum): [read]
    will reject it. No-op when absent. Test/attack hook. *)

val wipe : t -> unit
(** Lose everything (disk replacement). *)

val writes : t -> int
(** Total write operations, for overhead accounting. *)

(** {1 Append-only logs on top of the blob store} *)

module Log : sig
  type store := t
  type t

  val attach : store -> name:string -> t
  (** Open (or re-open) the named log; surviving intact entries become
      readable. *)

  val append : t -> string -> unit
  val length : t -> int
  val entries : t -> string list
  (** In append order. A damaged entry truncates the log from that point —
      entries past a hole cannot be trusted. *)

  val truncate : t -> unit
  (** Drop all entries (e.g. after a checkpoint subsumes them). *)
end
