(** Example services used by the examples, tests and benchmarks.

    All commands are space-separated words; responses are ["ok..."],
    a value, or ["err:..."]. *)

val kv : Dsm.t
(** Key-value store. Commands: [put k v], [get k], [del k], [cas k old new],
    [size]. Keys and values must not contain spaces, ['='] or newlines. *)

val counter : Dsm.t
(** Single integer. Commands: [incr], [decr], [add n], [read]. *)

val bank : Dsm.t
(** Accounts with non-negative integer balances. Commands: [open a],
    [deposit a n], [withdraw a n], [balance a], [transfer a b n]. Withdraw
    and transfer fail (["err:insufficient"]) rather than overdraw. *)

val lottery : Dsm.t
(** A deliberately {e nondeterministic} service: [draw bound] consumes the
    executing node's entropy. Under primary-backup all replicas agree
    (entropy is the primary's); under SMR the replicas diverge — the
    paper's motivation for FORTRESS. Also [count] and [last]. *)

val session : Dsm.t
(** A login service minting entropy-derived tokens — the archetypal
    nondeterministic service a real deployment would want behind FORTRESS.
    Commands: [login u] (returns the token), [check u token], [logout u],
    [sessions]. *)

val all : (string * Dsm.t) list
val find : string -> Dsm.t option
