(** Proxy overhead on the request path.

    The paper (section 2.2, citing Saidane et al.) notes that the overhead
    due to proxies is minimal when no intrusion is suspected. This
    experiment measures it in the protocol simulation: client round-trip
    latencies for the same primary-backup service reached directly (S1)
    and through the proxy tier (S2), under identical link latency. The
    fortified path adds exactly one proxy hop each way plus the
    over-signing work, so the expected factor at low load is ~2x on the
    wire — visible here, and small against the unit time-step. *)

type measurement = {
  label : string;
  requests : int;
  mean_rtt : float;
  p95_rtt : float;
  min_rtt : float;
}

val measure :
  ?requests:int -> ?seed:int -> np:int -> unit -> measurement
(** Round-trip times for [requests] sequential commands against a fresh
    deployment with [np] proxies (0 = direct S1). *)

val compare_tiers : ?requests:int -> ?seed:int -> unit -> measurement list
(** Direct, 1-proxy and 3-proxy measurements. *)

val table : measurement list -> Fortress_util.Table.t
