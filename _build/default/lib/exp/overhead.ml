module Engine = Fortress_sim.Engine
module Deployment = Fortress_core.Deployment
module Client = Fortress_core.Client
module Stats = Fortress_util.Stats
module Table = Fortress_util.Table

type measurement = {
  label : string;
  requests : int;
  mean_rtt : float;
  p95_rtt : float;
  min_rtt : float;
}

let measure ?(requests = 200) ?(seed = 0) ~np () =
  if requests <= 0 then invalid_arg "Overhead.measure: requests must be positive";
  let deployment = Deployment.create { Deployment.default_config with np; seed } in
  let engine = Deployment.engine deployment in
  let client = Deployment.new_client deployment ~name:"probe-client" in
  let rtts = ref [] in
  (* sequential requests so queueing does not pollute the path latency *)
  let rec run_one i =
    if i < requests then begin
      let started = Engine.now engine in
      ignore
        (Client.submit client
           ~cmd:(Printf.sprintf "put k%d v" i)
           ~on_response:(fun _ ->
             rtts := (Engine.now engine -. started) :: !rtts;
             run_one (i + 1)))
    end
  in
  run_one 0;
  Engine.run ~until:(float_of_int requests *. 50.0) engine;
  let xs = Array.of_list !rtts in
  if Array.length xs = 0 then invalid_arg "Overhead.measure: no requests completed";
  {
    label = (if np = 0 then "direct (S1)" else Printf.sprintf "%d proxies (S2)" np);
    requests = Array.length xs;
    mean_rtt = Stats.mean_of xs;
    p95_rtt = Stats.quantile xs ~q:0.95;
    min_rtt = Array.fold_left Float.min infinity xs;
  }

let compare_tiers ?requests ?seed () =
  List.map (fun np -> measure ?requests ?seed ~np ()) [ 0; 1; 3 ]

let table measurements =
  let t =
    Table.create ~headers:[ "path"; "requests"; "mean RTT"; "p95 RTT"; "min RTT"; "vs direct" ]
  in
  let baseline =
    match measurements with m :: _ -> m.mean_rtt | [] -> invalid_arg "Overhead.table: empty"
  in
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.label;
          string_of_int m.requests;
          Printf.sprintf "%.2f" m.mean_rtt;
          Printf.sprintf "%.2f" m.p95_rtt;
          Printf.sprintf "%.2f" m.min_rtt;
          Printf.sprintf "%.2fx" (m.mean_rtt /. baseline);
        ])
    measurements;
  t
