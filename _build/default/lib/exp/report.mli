(** One-shot markdown report covering every reproduced artefact.

    The report is the machine-generated companion to EXPERIMENTS.md: it
    regenerates each figure, ablation and validation run at the requested
    fidelity and renders them as a single markdown document, so reviewers
    can diff a fresh run against the committed record. *)

type fidelity =
  | Quick  (** analytic tables only, coarse grids — seconds *)
  | Full  (** adds Monte-Carlo validation, distribution shapes and the
              campaign-driven ablation — minutes *)

val generate : ?fidelity:fidelity -> unit -> string
(** The whole report as markdown. *)

val section_titles : fidelity -> string list
(** Titles in output order (used by tests and the CLI's table of
    contents). *)
