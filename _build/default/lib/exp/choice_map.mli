(** The paper's conclusion (section 7) as an artifact: which architecture
    to pick, across the whole (alpha, kappa) operating plane.

    For every grid point the map reports the longest-lived of the three
    deployable PO designs — S0PO (SMR + proactive obfuscation, needs a
    deterministic state machine), S2PO (FORTRESS, works for any service)
    and S1PO (plain primary-backup with obfuscation, the no-proxy
    fallback) — plus the factor by which FORTRESS trails SMR, which is the
    price of not having a DSM. *)

type cell = {
  alpha : float;
  kappa : float;
  winner : Fortress_model.Systems.system;
  runner_up : Fortress_model.Systems.system;
  margin : float;  (** EL(winner) / EL(runner_up) *)
  dsm_premium : float;  (** EL(S0PO) / EL(S2PO): what determinism buys *)
}

val grid : ?alpha_points:int -> ?kappa_points:int -> unit -> cell list

val map_string : ?alpha_points:int -> ?kappa_points:int -> unit -> string
(** A compact character map, one row per kappa, one column per alpha:
    ['0'] where S0PO wins, ['2'] where S2PO wins, ['1'] where S1PO wins. *)

val premium_table : ?points:int -> unit -> Fortress_util.Table.t
(** The DSM premium across alpha for several kappa values — how much
    lifetime a team gives up by choosing FORTRESS over making its service
    a deterministic state machine. *)
