let log_spaced ~lo ~hi ~points =
  if not (lo > 0.0 && hi > lo) then invalid_arg "Sweep.log_spaced: need 0 < lo < hi";
  if points < 2 then invalid_arg "Sweep.log_spaced: need at least 2 points";
  let llo = log10 lo and lhi = log10 hi in
  List.init points (fun i ->
      let frac = float_of_int i /. float_of_int (points - 1) in
      10.0 ** (llo +. (frac *. (lhi -. llo))))

let alpha_grid ?(points = 13) () = log_spaced ~lo:1e-5 ~hi:1e-2 ~points
let paper_kappas = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ]
