lib/exp/degradation.mli: Fortress_util
