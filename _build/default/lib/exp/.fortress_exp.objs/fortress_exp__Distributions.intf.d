lib/exp/distributions.mli: Fortress_mc Fortress_model Fortress_util
