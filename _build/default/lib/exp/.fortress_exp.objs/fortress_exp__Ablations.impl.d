lib/exp/ablations.ml: Fortress_attack Fortress_core Fortress_defense Fortress_mc Fortress_model Fortress_util List Overhead Printf Sweep
