lib/exp/report.mli:
