lib/exp/choice_map.ml: Buffer Float Fortress_model Fortress_util List Printf Sweep
