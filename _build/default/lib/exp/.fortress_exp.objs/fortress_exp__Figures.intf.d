lib/exp/figures.mli: Fortress_util
