lib/exp/validation.ml: Float Fortress_attack Fortress_core Fortress_defense Fortress_mc Fortress_model Fortress_util List Printf
