lib/exp/overhead.ml: Array Float Fortress_core Fortress_sim Fortress_util List Printf
