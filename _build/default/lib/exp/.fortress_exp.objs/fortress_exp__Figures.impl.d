lib/exp/figures.ml: Array Char Fortress_mc Fortress_model Fortress_util List Option Printf Sweep
