lib/exp/choice_map.mli: Fortress_model Fortress_util
