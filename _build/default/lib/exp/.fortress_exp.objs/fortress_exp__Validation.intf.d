lib/exp/validation.mli: Fortress_mc Fortress_model Fortress_util
