lib/exp/degradation.ml: Fortress_attack Fortress_core Fortress_defense Fortress_sim Fortress_util List Printf
