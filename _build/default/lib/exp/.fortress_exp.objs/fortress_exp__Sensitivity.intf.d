lib/exp/sensitivity.mli: Fortress_model Fortress_util
