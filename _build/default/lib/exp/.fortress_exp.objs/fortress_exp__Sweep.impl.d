lib/exp/sweep.ml: List
