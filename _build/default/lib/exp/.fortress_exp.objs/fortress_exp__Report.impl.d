lib/exp/report.ml: Ablations Buffer Choice_map Distributions Figures Fortress_model Fortress_util List Printf Sensitivity String Validation
