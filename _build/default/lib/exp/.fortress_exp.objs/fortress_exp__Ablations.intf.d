lib/exp/ablations.mli: Fortress_util
