lib/exp/distributions.ml: Array Float Fortress_mc Fortress_model Fortress_util List Printf
