lib/exp/sensitivity.ml: Float Fortress_model Fortress_util List Printf
