lib/exp/overhead.mli: Fortress_util
