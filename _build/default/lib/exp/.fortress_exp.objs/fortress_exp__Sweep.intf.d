lib/exp/sweep.mli:
