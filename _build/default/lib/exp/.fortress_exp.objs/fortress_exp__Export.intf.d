lib/exp/export.mli:
