lib/exp/export.ml: Ablations Figures Filename Fortress_util List Sensitivity String Sys
