(** Collateral damage: what an ongoing attack does to legitimate clients.

    The expected-lifetime metric says when the system falls; this
    experiment asks what service quality looks like while it stands. A
    FORTRESS deployment serves a steady legitimate workload while an attack
    campaign of increasing intensity runs; we record served fraction and
    round-trip latency. Because proxies do not execute requests, the probe
    load they absorb is cheap, and source blocking never touches legitimate
    clients — the design prediction this experiment checks. *)

type point = {
  omega : int;  (** attacker probes per channel per step *)
  offered : int;  (** legitimate requests submitted *)
  served : int;
  served_fraction : float;
  mean_rtt : float;
  survived_steps : int;  (** steps before compromise; horizon if it held *)
}

val run :
  ?omegas:int list ->
  ?requests:int ->
  ?horizon:int ->
  ?chi:int ->
  ?seed:int ->
  unit ->
  point list
(** Defaults: omegas [0; 8; 32; 128], 100 requests, 30-step horizon,
    chi = 2^14. *)

val table : point list -> Fortress_util.Table.t
