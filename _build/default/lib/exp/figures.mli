(** Regeneration of the paper's evaluation artefacts.

    Figure 1 compares the expected lifetimes of S0SO, S1SO, S1PO, S2PO and
    S0PO over the realistic alpha range; Figure 2 shows S2PO's lifetime as
    kappa varies (log scale). Each function returns both the analytic
    series and, optionally, Monte-Carlo estimates with confidence
    intervals. *)

type f1_row = {
  alpha : float;
  s0_so : float;
  s1_so : float;
  s1_po : float;
  s2_po : float;  (** at the row's kappa, default 0.5 *)
  s0_po : float;
}

val figure1_rows : ?points:int -> ?kappa:float -> unit -> f1_row list

val figure1_table :
  ?points:int -> ?kappa:float -> ?mc_trials:int -> unit -> Fortress_util.Table.t
(** With [mc_trials > 0], adds step-level Monte-Carlo columns (mean and 95%
    CI half-width) for every system, cross-checking the analytic curves. *)

val figure1_plot : ?points:int -> ?kappa:float -> unit -> string
(** ASCII log-log rendering of Figure 1, one glyph per system. *)

type f2_row = { alpha : float; by_kappa : (float * float) list }

val figure2_rows : ?points:int -> ?kappas:float list -> unit -> f2_row list
val figure2_table : ?points:int -> ?kappas:float list -> unit -> Fortress_util.Table.t
val figure2_plot : ?points:int -> ?kappas:float list -> unit -> string

(** {1 The summary ordering (section 6)} *)

type ordering_report = {
  alphas_checked : int;
  s0po_beats_s2po : bool;  (** for every kappa > 0 tested *)
  s2po_beats_s1po_at_low_kappa : bool;  (** at kappa = 0.5 *)
  s1po_beats_s1so : bool;
  s1so_beats_s0so : bool;
  kappa_crossover : (float * float) list;
      (** per alpha: the kappa above which S2PO stops outliving S1PO *)
}

val ordering : ?points:int -> unit -> ordering_report
val ordering_table : ?points:int -> unit -> Fortress_util.Table.t
(** Pairwise comparisons per alpha plus the measured kappa crossover. *)

val kappa_crossover_at : alpha:float -> float
(** Bisect for the kappa at which EL(S2PO) = EL(S1PO). *)

(** {1 The PODC 2009 claim (paper section 1)} *)

type podc_row = { p_alpha : float; fortified_pb : float; smr_recovery : float }

val podc_claim : ?points:int -> unit -> podc_row list
(** The earlier paper's headline result, re-checked here: under the strict
    assumption that no server can be attacked until a proxy falls (kappa =
    0) and with start-up-only randomization plus proactive recovery on both
    sides, a fortified primary-backup system is at least as attack
    resilient as the 4-replica, 1-tolerant SMR system. Rows compare
    EL(S2SO, kappa = 0) against EL(S0SO). *)

val podc_claim_table : ?points:int -> unit -> Fortress_util.Table.t
val podc_claim_holds : ?points:int -> unit -> bool
