(** Local sensitivity of expected lifetime to the model parameters.

    Reported as elasticities d ln EL / d ln theta (central finite
    differences in log-space): the percentage change in lifetime per
    percent change in the parameter. Geometric-lifetime systems have
    elasticity -1 in alpha exactly; FORTRESS splits its sensitivity
    between alpha and kappa, and the split quantifies how much of the
    defence is re-randomization versus proxy throttling at a given
    operating point. *)

type row = {
  system : Fortress_model.Systems.system;
  alpha : float;
  kappa : float;
  d_alpha : float;  (** elasticity of EL with respect to alpha *)
  d_kappa : float;  (** elasticity with respect to kappa; 0 for 1-tier systems *)
}

val elasticity :
  ?rel_step:float ->
  Fortress_model.Systems.system ->
  alpha:float ->
  kappa:float ->
  row
(** [rel_step] (default 1e-3) is the relative perturbation. *)

val table : ?alpha:float -> ?kappa:float -> unit -> Fortress_util.Table.t
(** All six systems at one operating point (defaults alpha 1e-3,
    kappa 0.5). *)
