module Systems = Fortress_model.Systems
module Step_level = Fortress_mc.Step_level
module Trial = Fortress_mc.Trial
module Histogram = Fortress_util.Histogram
module Stats = Fortress_util.Stats
module Table = Fortress_util.Table

type profile = {
  system : Systems.system;
  alpha : float;
  kappa : float;
  result : Trial.result;
  histogram : Histogram.t;
  cv : float;
  p90_over_median : float;
}

let profile ?(trials = 4000) ?(seed = 42) ?(bins = 30) system ~alpha ~kappa =
  let cfg = { Step_level.default with alpha; kappa } in
  let result = Step_level.estimate ~trials ~seed system cfg in
  let xs = result.Trial.lifetimes in
  if Array.length xs = 0 then invalid_arg "Distributions.profile: all trials censored";
  let hi = Array.fold_left Float.max 1.0 xs +. 1.0 in
  let histogram = Histogram.create_linear ~lo:0.0 ~hi ~bins in
  Array.iter (Histogram.add histogram) xs;
  let mean = Stats.mean_of xs in
  let cv = sqrt (Stats.variance_of xs) /. mean in
  let p90 = Stats.quantile xs ~q:0.9 in
  let median = Stats.median xs in
  { system; alpha; kappa; result; histogram; cv; p90_over_median = p90 /. median }

let table profiles =
  let t =
    Table.create
      ~headers:[ "system"; "alpha"; "mean EL"; "median"; "cv"; "p90/median"; "shape" ]
  in
  List.iter
    (fun p ->
      let shape =
        (* geometric lifetimes have cv ~ 1; a uniform cutoff gives ~ 0.58 *)
        if p.cv > 0.85 then "memoryless (geometric)"
        else if p.cv < 0.7 then "hard cutoff (exhaustion)"
        else "intermediate"
      in
      Table.add_row t
        [
          Systems.system_to_string p.system;
          Printf.sprintf "%.3g" p.alpha;
          Printf.sprintf "%.1f" p.result.Trial.mean;
          Printf.sprintf "%.1f" p.result.Trial.median;
          Printf.sprintf "%.3f" p.cv;
          Printf.sprintf "%.2f" p.p90_over_median;
          shape;
        ])
    profiles;
  t

let render_histogram p = Histogram.render ~width:40 p.histogram
