module Systems = Fortress_model.Systems
module Table = Fortress_util.Table

type cell = {
  alpha : float;
  kappa : float;
  winner : Systems.system;
  runner_up : Systems.system;
  margin : float;
  dsm_premium : float;
}

let contenders alpha kappa =
  [
    (Systems.S0_PO, Systems.s0_po ~alpha);
    (Systems.S2_PO, Systems.s2_po ~alpha ~kappa ());
    (Systems.S1_PO, Systems.s1_po ~alpha);
  ]

let cell_at ~alpha ~kappa =
  let ranked =
    List.sort (fun (_, a) (_, b) -> Float.compare b a) (contenders alpha kappa)
  in
  match ranked with
  | (winner, el_w) :: (runner_up, el_r) :: _ ->
      {
        alpha;
        kappa;
        winner;
        runner_up;
        margin = el_w /. el_r;
        dsm_premium = Systems.s0_po ~alpha /. Systems.s2_po ~alpha ~kappa ();
      }
  | _ -> assert false

let kappa_grid points =
  List.init points (fun i -> float_of_int i /. float_of_int (points - 1))

let grid ?(alpha_points = 13) ?(kappa_points = 11) () =
  List.concat_map
    (fun kappa ->
      List.map (fun alpha -> cell_at ~alpha ~kappa) (Sweep.alpha_grid ~points:alpha_points ()))
    (kappa_grid kappa_points)

let map_string ?(alpha_points = 25) ?(kappa_points = 11) () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kappa \\ alpha: 1e-5 ..................... 1e-2\n";
  List.iter
    (fun kappa ->
      Buffer.add_string buf (Printf.sprintf "%5.2f  " kappa);
      List.iter
        (fun alpha ->
          let c = cell_at ~alpha ~kappa in
          Buffer.add_char buf
            (match c.winner with
            | Systems.S0_PO -> '0'
            | Systems.S2_PO -> '2'
            | Systems.S1_PO -> '1'
            | Systems.S0_SO | Systems.S1_SO | Systems.S2_SO -> '?'))
        (Sweep.alpha_grid ~points:alpha_points ());
      Buffer.add_char buf '\n')
    (List.rev (kappa_grid kappa_points));
  Buffer.add_string buf
    "\n0 = S0PO wins (needs a deterministic state machine)\n\
     2 = S2PO wins (FORTRESS: any service)\n\
     1 = S1PO wins (no proxies worth deploying)\n";
  Buffer.contents buf

let premium_table ?(points = 7) () =
  let kappas = [ 0.0; 0.1; 0.5; 1.0 ] in
  let t =
    Table.create
      ~headers:("alpha" :: List.map (fun k -> Printf.sprintf "premium k=%.2g" k) kappas)
  in
  List.iter
    (fun alpha ->
      Table.add_row t
        (Printf.sprintf "%.3g" alpha
        :: List.map
             (fun kappa ->
               Printf.sprintf "%.3g" ((cell_at ~alpha ~kappa).dsm_premium))
             kappas))
    (Sweep.alpha_grid ~points ());
  t
