(** Lifetime {e distributions}, not just expectations.

    Expected lifetime hides a qualitative difference the models predict:
    under PO the per-step hazard is constant, so lifetimes are geometric —
    memoryless, coefficient of variation ~ 1, a long exponential tail.
    Under SO the hazard grows as keys are eliminated; for S1SO the
    compromise step is (almost) uniform over the exhaustion horizon, giving
    cv ~ 0.577 and a hard cutoff. Operationally: an SO system's survival
    so far is {e bad} news (the hazard has grown), a PO system's is no news
    at all. *)

type profile = {
  system : Fortress_model.Systems.system;
  alpha : float;
  kappa : float;
  result : Fortress_mc.Trial.result;
  histogram : Fortress_util.Histogram.t;
  cv : float;  (** sample coefficient of variation (stddev / mean) *)
  p90_over_median : float;  (** tail weight: ~3.3 for geometric, ~1.8 uniform *)
}

val profile :
  ?trials:int ->
  ?seed:int ->
  ?bins:int ->
  Fortress_model.Systems.system ->
  alpha:float ->
  kappa:float ->
  profile
(** Step-level Monte-Carlo sampling (default 4000 trials, 30 bins). *)

val table : profile list -> Fortress_util.Table.t
val render_histogram : profile -> string
