(** Parameter grids shared by the experiments. *)

val log_spaced : lo:float -> hi:float -> points:int -> float list
(** [points] values equally spaced in log10 between [lo] and [hi]
    inclusive. Raises [Invalid_argument] unless [0 < lo < hi] and
    [points >= 2]. *)

val alpha_grid : ?points:int -> unit -> float list
(** The paper's realistic range, [1e-5, 1e-2]; default 13 points (four per
    decade). *)

val paper_kappas : float list
(** The kappa values reported for Figure 2: 0, 0.1, 0.25, 0.5, 0.75, 0.9,
    1.0. *)
