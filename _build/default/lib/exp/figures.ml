module Systems = Fortress_model.Systems
module Table = Fortress_util.Table
module Step_level = Fortress_mc.Step_level
module Trial = Fortress_mc.Trial

type f1_row = {
  alpha : float;
  s0_so : float;
  s1_so : float;
  s1_po : float;
  s2_po : float;
  s0_po : float;
}

let figure1_rows ?points ?(kappa = 0.5) () =
  List.map
    (fun alpha ->
      {
        alpha;
        s0_so = Systems.s0_so ~alpha;
        s1_so = Systems.s1_so ~alpha;
        s1_po = Systems.s1_po ~alpha;
        s2_po = Systems.s2_po ~alpha ~kappa ();
        s0_po = Systems.s0_po ~alpha;
      })
    (Sweep.alpha_grid ?points ())

let sci v = Printf.sprintf "%.3g" v

let figure1_table ?points ?(kappa = 0.5) ?(mc_trials = 0) () =
  let rows = figure1_rows ?points ~kappa () in
  let analytic_headers = [ "alpha"; "S0SO"; "S1SO"; "S1PO"; "S2PO"; "S0PO" ] in
  let headers =
    if mc_trials > 0 then
      analytic_headers @ [ "S1PO-mc"; "S2PO-mc"; "S0PO-mc"; "S1SO-mc"; "S0SO-mc" ]
    else analytic_headers
  in
  let table = Table.create ~headers in
  List.iter
    (fun r ->
      let base = [ sci r.alpha; sci r.s0_so; sci r.s1_so; sci r.s1_po; sci r.s2_po; sci r.s0_po ] in
      let cells =
        if mc_trials = 0 then base
        else begin
          let cfg = { Step_level.default with alpha = r.alpha; kappa } in
          let mc system =
            let res = Step_level.estimate ~trials:mc_trials system cfg in
            let lo, hi = res.Trial.ci95 in
            Printf.sprintf "%.3g+/-%.2g" res.Trial.mean ((hi -. lo) /. 2.0)
          in
          base
          @ [
              mc Systems.S1_PO; mc Systems.S2_PO; mc Systems.S0_PO; mc Systems.S1_SO;
              mc Systems.S0_SO;
            ]
        end
      in
      Table.add_row table cells)
    rows;
  table

let figure1_plot ?points ?(kappa = 0.5) () =
  let rows = figure1_rows ?points:(Some (Option.value points ~default:25)) ~kappa () in
  let plot =
    Fortress_util.Plot.create ~x_label:"alpha" ~y_label:"expected lifetime (steps)" ()
  in
  let series name glyph select =
    Fortress_util.Plot.add_series plot ~name ~glyph
      (List.map (fun r -> (r.alpha, select r)) rows)
  in
  series "S0SO" '0' (fun r -> r.s0_so);
  series "S1SO" '1' (fun r -> r.s1_so);
  series "S1PO" 'p' (fun r -> r.s1_po);
  series (Printf.sprintf "S2PO (kappa=%.2g)" kappa) '2' (fun r -> r.s2_po);
  series "S0PO" 'S' (fun r -> r.s0_po);
  Fortress_util.Plot.render plot

type f2_row = { alpha : float; by_kappa : (float * float) list }

let figure2_rows ?points ?(kappas = Sweep.paper_kappas) () =
  List.map
    (fun alpha ->
      {
        alpha;
        by_kappa = List.map (fun kappa -> (kappa, Systems.s2_po ~alpha ~kappa ())) kappas;
      })
    (Sweep.alpha_grid ?points ())

let figure2_table ?points ?(kappas = Sweep.paper_kappas) () =
  let rows = figure2_rows ?points ~kappas () in
  let headers =
    "alpha"
    :: List.map (fun k -> Printf.sprintf "S2PO k=%.2g" k) kappas
    @ [ "S1PO"; "S0PO" ]
  in
  let table = Table.create ~headers in
  List.iter
    (fun r ->
      Table.add_row table
        (sci r.alpha
         :: List.map (fun (_, el) -> sci el) r.by_kappa
        @ [ sci (Systems.s1_po ~alpha:r.alpha); sci (Systems.s0_po ~alpha:r.alpha) ]))
    rows;
  table

let figure2_plot ?points ?(kappas = Sweep.paper_kappas) () =
  let rows = figure2_rows ?points:(Some (Option.value points ~default:25)) ~kappas () in
  let plot =
    Fortress_util.Plot.create ~x_label:"alpha" ~y_label:"S2PO expected lifetime (steps)" ()
  in
  let glyphs = [| '0'; 'a'; 'b'; 'c'; 'd'; 'e'; '1' |] in
  List.iteri
    (fun i kappa ->
      let glyph = if i < Array.length glyphs then glyphs.(i) else Char.chr (Char.code 'f' + i) in
      Fortress_util.Plot.add_series plot
        ~name:(Printf.sprintf "kappa = %.2g" kappa)
        ~glyph
        (List.map (fun r -> (r.alpha, List.assoc kappa r.by_kappa)) rows))
    kappas;
  Fortress_util.Plot.render plot

(* ---- ordering ---- *)

let kappa_crossover_at ~alpha =
  let s1 = Systems.s1_po ~alpha in
  let gap kappa = Systems.s2_po ~alpha ~kappa () -. s1 in
  if gap 1.0 >= 0.0 then 1.0
  else if gap 0.0 <= 0.0 then 0.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 60 do
      let mid = (!lo +. !hi) /. 2.0 in
      if gap mid > 0.0 then lo := mid else hi := mid
    done;
    (!lo +. !hi) /. 2.0
  end

type podc_row = { p_alpha : float; fortified_pb : float; smr_recovery : float }

let podc_claim ?points () =
  List.map
    (fun alpha ->
      {
        p_alpha = alpha;
        fortified_pb = Systems.s2_so ~alpha ~kappa:0.0 ();
        smr_recovery = Systems.s0_so ~alpha;
      })
    (Sweep.alpha_grid ?points ())

let podc_claim_table ?points () =
  let table =
    Table.create ~headers:[ "alpha"; "fortified PB (S2SO, k=0)"; "SMR + recovery (S0SO)"; "ratio" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [ sci r.p_alpha; sci r.fortified_pb; sci r.smr_recovery;
          Printf.sprintf "%.2f" (r.fortified_pb /. r.smr_recovery) ])
    (podc_claim ?points ());
  table

let podc_claim_holds ?points () =
  List.for_all (fun r -> r.fortified_pb >= r.smr_recovery) (podc_claim ?points ())

type ordering_report = {
  alphas_checked : int;
  s0po_beats_s2po : bool;
  s2po_beats_s1po_at_low_kappa : bool;
  s1po_beats_s1so : bool;
  s1so_beats_s0so : bool;
  kappa_crossover : (float * float) list;
}

let ordering ?points () =
  let alphas = Sweep.alpha_grid ?points () in
  let positive_kappas = List.filter (fun k -> k > 0.0) Sweep.paper_kappas in
  let all f = List.for_all f alphas in
  {
    alphas_checked = List.length alphas;
    s0po_beats_s2po =
      all (fun alpha ->
          List.for_all
            (fun kappa -> Systems.s0_po ~alpha >= Systems.s2_po ~alpha ~kappa ())
            positive_kappas);
    s2po_beats_s1po_at_low_kappa =
      all (fun alpha -> Systems.s2_po ~alpha ~kappa:0.5 () > Systems.s1_po ~alpha);
    s1po_beats_s1so = all (fun alpha -> Systems.s1_po ~alpha > Systems.s1_so ~alpha);
    s1so_beats_s0so = all (fun alpha -> Systems.s1_so ~alpha > Systems.s0_so ~alpha);
    kappa_crossover = List.map (fun alpha -> (alpha, kappa_crossover_at ~alpha)) alphas;
  }

let ordering_table ?points () =
  let report = ordering ?points () in
  let table =
    Table.create
      ~headers:[ "alpha"; "S0PO>=S2PO(k>0)"; "S2PO>S1PO(k=0.5)"; "S1PO>S1SO"; "S1SO>S0SO"; "kappa*" ]
  in
  List.iter
    (fun (alpha, crossover) ->
      let yes b = if b then "yes" else "NO" in
      let positive_kappas = List.filter (fun k -> k > 0.0) Sweep.paper_kappas in
      Table.add_row table
        [
          sci alpha;
          yes
            (List.for_all
               (fun kappa -> Systems.s0_po ~alpha >= Systems.s2_po ~alpha ~kappa ())
               positive_kappas);
          yes (Systems.s2_po ~alpha ~kappa:0.5 () > Systems.s1_po ~alpha);
          yes (Systems.s1_po ~alpha > Systems.s1_so ~alpha);
          yes (Systems.s1_so ~alpha > Systems.s0_so ~alpha);
          Printf.sprintf "%.4f" crossover;
        ])
    report.kappa_crossover;
  table
