module Systems = Fortress_model.Systems
module Table = Fortress_util.Table

type row = {
  system : Systems.system;
  alpha : float;
  kappa : float;
  d_alpha : float;
  d_kappa : float;
}

let log_elasticity f theta ~rel_step =
  let up = f (theta *. (1.0 +. rel_step)) in
  let down = f (theta *. (1.0 -. rel_step)) in
  if up <= 0.0 || down <= 0.0 || Float.is_nan up || Float.is_nan down then nan
  else (log up -. log down) /. (log (1.0 +. rel_step) -. log (1.0 -. rel_step))

let elasticity ?(rel_step = 1e-3) system ~alpha ~kappa =
  let el ~alpha ~kappa = Systems.expected_lifetime system ~alpha ~kappa in
  let d_alpha = log_elasticity (fun a -> el ~alpha:a ~kappa) alpha ~rel_step in
  let d_kappa =
    (* only the two-tier systems respond to kappa *)
    match system with
    | Systems.S2_PO | Systems.S2_SO ->
        if kappa <= 0.0 then 0.0
        else log_elasticity (fun k -> el ~alpha ~kappa:k) kappa ~rel_step
    | Systems.S0_SO | Systems.S1_SO | Systems.S0_PO | Systems.S1_PO -> 0.0
  in
  { system; alpha; kappa; d_alpha; d_kappa }

let table ?(alpha = 1e-3) ?(kappa = 0.5) () =
  let t =
    Table.create ~headers:[ "system"; "EL"; "dlnEL/dln(alpha)"; "dlnEL/dln(kappa)" ]
  in
  List.iter
    (fun system ->
      let r = elasticity system ~alpha ~kappa in
      Table.add_row t
        [
          Systems.system_to_string system;
          Printf.sprintf "%.4g" (Systems.expected_lifetime system ~alpha ~kappa);
          Printf.sprintf "%+.3f" r.d_alpha;
          Printf.sprintf "%+.3f" r.d_kappa;
        ])
    Systems.all_systems;
  t
