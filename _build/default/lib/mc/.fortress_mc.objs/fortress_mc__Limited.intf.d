lib/mc/limited.mli: Fortress_util Trial
