lib/mc/step_level.ml: Fortress_model Fortress_util Trial
