lib/mc/probe_level.mli: Fortress_model Fortress_util Trial
