lib/mc/step_level.mli: Fortress_model Fortress_util Trial
