lib/mc/trial.mli: Format Fortress_util
