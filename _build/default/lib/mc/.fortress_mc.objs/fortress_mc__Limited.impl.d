lib/mc/limited.ml: Array Float Fortress_util Trial
