lib/mc/trial.ml: Array Format Fortress_util List
