lib/mc/probe_level.ml: Array Float Fortress_attack Fortress_defense Fortress_model Fortress_util Fun List Trial
