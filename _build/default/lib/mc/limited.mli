(** Limited diversity (Sousa et al., PRDC 2007 — paper section 2.3).

    Instead of recompiling with a fresh key every step, each re-boot picks
    an executable from a small pre-compiled candidate set of size c. The
    attacker's eliminations are per candidate and permanent, so a small
    set is exhausted like SO while a huge one behaves like PO: the scheme
    interpolates between the paper's two obfuscation regimes.

    c = 1 is exactly S1SO; c -> infinity approaches S1PO. *)

type config = {
  alpha : float;  (** per-step success probability against a fresh variant *)
  candidates : int;  (** size of the pre-compiled set, >= 1 *)
  max_steps : int;
}

val default : config
(** alpha 1e-3, 4 candidates, horizon 10^7. *)

val lifetime : config -> Fortress_util.Prng.t -> int option
(** One trial: each step the system runs a uniformly drawn candidate; the
    attacker resumes that candidate's elimination campaign where it left
    off. *)

val estimate : ?trials:int -> ?seed:int -> config -> Trial.result

val expected_lifetime : ?trials:int -> ?seed:int -> config -> float
(** Monte-Carlo mean (there is no clean closed form: the per-candidate
    exposure counts are random). *)
