module Workload = Fortress_load.Workload
module Arrival = Fortress_load.Arrival
module Inject = Fortress_exp.Inject
module Load_compare = Fortress_exp.Load_compare
module Plan = Fortress_faults.Plan
module Engine = Fortress_sim.Engine
module Prng = Fortress_util.Prng

(* ---- spec grammar ---- *)

let test_spec_parsing () =
  let ok s = Result.get_ok (Workload.spec_of_string s) in
  (match (ok "poisson:rate=0.5").Workload.loop with
  | Workload.Open (Arrival.Poisson { rate }) -> Alcotest.(check (float 1e-9)) "rate" 0.5 rate
  | _ -> Alcotest.fail "expected poisson");
  (match ok "closed:clients=64,think=25,batch=8,timeout=300" with
  | { Workload.loop = Workload.Closed { clients; think }; batch; timeout } ->
      Alcotest.(check int) "clients" 64 clients;
      Alcotest.(check (float 1e-9)) "think" 25.0 think;
      Alcotest.(check int) "batch" 8 batch;
      Alcotest.(check (float 1e-9)) "timeout" 300.0 timeout
  | _ -> Alcotest.fail "expected closed");
  let err s = Result.is_error (Workload.spec_of_string s) in
  Alcotest.(check bool) "unknown kind" true (err "zipf:rate=1");
  Alcotest.(check bool) "unknown key" true (err "poisson:rate=1,burst=2");
  Alcotest.(check bool) "missing key" true (err "poisson:batch=2");
  Alcotest.(check bool) "bursty needs burst > rate" true (err "bursty:rate=2,burst=1");
  Alcotest.(check bool) "bad number" true (err "poisson:rate=fast");
  Alcotest.(check bool) "zero batch" true (err "poisson:rate=1,batch=0")

let test_spec_roundtrip () =
  List.iter
    (fun s ->
      let spec = Result.get_ok (Workload.spec_of_string s) in
      let spec' = Result.get_ok (Workload.spec_of_string (Workload.spec_to_string spec)) in
      Alcotest.(check bool) (s ^ " roundtrips") true (spec = spec'))
    [
      "uniform:period=10"; "poisson:rate=0.25"; "bursty:rate=0.2,burst=2";
      "bursty:rate=0.1,burst=1,on=30,off=80,batch=4"; "closed:clients=32";
      "closed:clients=8,think=10,timeout=50,batch=2";
    ]

(* ---- arrival processes ---- *)

let test_arrival_means () =
  let mean arrival n =
    let prng = Prng.create ~seed:7 in
    let state = Arrival.init arrival prng in
    let total = ref 0.0 in
    for _ = 1 to n do
      total := !total +. Arrival.next_gap arrival state prng
    done;
    !total /. float_of_int n
  in
  Alcotest.(check (float 1e-9)) "uniform gap is the period" 4.0
    (mean (Arrival.Uniform { period = 4.0 }) 100);
  let poisson = mean (Arrival.Poisson { rate = 0.5 }) 20_000 in
  Alcotest.(check bool) "poisson mean gap near 1/rate" true
    (Float.abs (poisson -. 2.0) < 0.1);
  (* MMPP-2 long-run rate lies between the base and burst rates, weighted
     by phase occupancy *)
  let bursty =
    mean (Arrival.Bursty { rate = 0.2; burst = 2.0; mean_on = 25.0; mean_off = 100.0 }) 20_000
  in
  Alcotest.(check bool) "bursty mean gap between regimes" true
    (bursty > 1.0 /. 2.0 && bursty < 1.0 /. 0.2)

(* ---- attach on a live stack ---- *)

let fortress_stack ~seed =
  Fortress_core.Fortress_stack.of_parts
    (Fortress_core.Deployment.create { Fortress_core.Deployment.default_config with seed })

let run_spec ?(seed = 5) ?(horizon = 600.0) spec =
  let stack = fortress_stack ~seed in
  let engine = Fortress_core.Fortress_stack.engine stack in
  let h =
    Workload.attach
      (module Fortress_core.Fortress_stack)
      stack ~seed
      (Result.get_ok (Workload.spec_of_string spec))
  in
  Engine.run ~until:horizon engine;
  Workload.stats h

let test_open_loop_served () =
  let s = run_spec "poisson:rate=0.5" in
  Alcotest.(check bool) "issued about rate*horizon" true
    (s.Workload.issued > 200 && s.Workload.issued < 400);
  let avail = Option.get (Workload.availability s) in
  Alcotest.(check bool) "nearly all answered on a healthy stack" true (avail > 0.97)

let test_closed_loop_littles_law () =
  (* throughput = N / (Z + R): 8 sessions, think 40, R about 2.3 on the
     fault-free stack, so about 8/42.3 per unit time over the horizon *)
  let s = run_spec "closed:clients=8,think=40" ~horizon:2000.0 in
  let throughput = float_of_int s.Workload.answered /. 2000.0 in
  let predicted = 8.0 /. (40.0 +. 2.3) in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.3f within 15%% of Little's law %.3f" throughput predicted)
    true
    (Float.abs (throughput -. predicted) /. predicted < 0.15)

let test_batching_preserves_physical_stream () =
  (* one physical request carries [batch] logical requests: the protocol
     traffic — and therefore the event digest — must be identical to the
     batch-1 run, while the logical counters scale by the batch factor *)
  let run batch =
    let stack = fortress_stack ~seed:11 in
    let engine = Fortress_core.Fortress_stack.engine stack in
    let digest, finalize = Fortress_obs.Sink.digesting () in
    ignore (Fortress_obs.Sink.attach (Engine.sink engine) digest);
    let h =
      Workload.attach
        (module Fortress_core.Fortress_stack)
        stack ~seed:11
        (Result.get_ok (Workload.spec_of_string ("poisson:rate=0.3,batch=" ^ string_of_int batch)))
    in
    Engine.run ~until:400.0 engine;
    (finalize (), Workload.stats h)
  in
  let d1, s1 = run 1 and d4, s4 = run 4 in
  Alcotest.(check string) "digest independent of batch" d1 d4;
  Alcotest.(check int) "same physical submissions" s1.Workload.submitted s4.Workload.submitted;
  Alcotest.(check int) "logical issued scales" (s1.Workload.issued * 4) s4.Workload.issued;
  Alcotest.(check int) "logical answered scales" (s1.Workload.answered * 4) s4.Workload.answered

(* ---- determinism through Inject ---- *)

let load_cfg =
  {
    Inject.default_config with
    Inject.trials = 3;
    load = Some (Result.get_ok (Workload.spec_of_string "closed:clients=8,think=50"));
  }

let test_load_jobs_invariant () =
  let run run_plan jobs = run_plan { load_cfg with Inject.jobs } Plan.lossy in
  List.iter
    (fun (name, run_plan) ->
      let r1 = run run_plan 1 and r4 = run run_plan 4 in
      Alcotest.(check string) (name ^ " digest") r1.Inject.digest r4.Inject.digest;
      let s1 = Option.get r1.Inject.load and s4 = Option.get r4.Inject.load in
      Alcotest.(check int) (name ^ " issued") s1.Workload.issued s4.Workload.issued;
      Alcotest.(check int) (name ^ " answered") s1.Workload.answered s4.Workload.answered;
      Alcotest.(check int) (name ^ " timed out") s1.Workload.timed_out s4.Workload.timed_out;
      Alcotest.(check (option (float 1e-9)))
        (name ^ " p99") (Workload.quantile s1 0.99) (Workload.quantile s4 0.99);
      Alcotest.(check (option (float 1e-9)))
        (name ^ " availability") r1.Inject.availability r4.Inject.availability)
    [
      ("fortress", fun cfg plan -> Inject.run_plan cfg plan);
      ("smr", fun cfg plan -> Inject.run_smr_plan cfg plan);
    ]

let test_load_does_not_move_attack_digest () =
  (* the workload draws from its own PRNG stream: attaching it must not
     change the attacker's or the defense's randomness, so expected
     lifetime is identical with and without load *)
  let bare = Inject.run_plan { load_cfg with Inject.load = None } Plan.lossy in
  let loaded = Inject.run_plan load_cfg Plan.lossy in
  Alcotest.(check (float 1e-9)) "EL unchanged by load" bare.Inject.el.Fortress_mc.Trial.mean
    loaded.Inject.el.Fortress_mc.Trial.mean

let test_smr_availability_is_measured () =
  let bare = Inject.run_smr_plan { load_cfg with Inject.load = None } Plan.none in
  Alcotest.(check (option (float 1e-9))) "no client, no availability" None
    bare.Inject.availability;
  let loaded = Inject.run_smr_plan load_cfg Plan.none in
  match loaded.Inject.availability with
  | None -> Alcotest.fail "availability should be measured under load"
  | Some a -> Alcotest.(check bool) "within (0, 1]" true (a > 0.0 && a <= 1.0)

(* ---- the PODC comparison ---- *)

let test_podc_matched_plans () =
  let spec = Result.get_ok (Workload.spec_of_string "closed:clients=8,think=50") in
  let config = { Inject.default_config with Inject.trials = 3 } in
  let p = Load_compare.podc ~config ~plans:[ Plan.crashy ] spec in
  let open Load_compare in
  (* plan-major, fortress then smr within each plan *)
  Alcotest.(check (list string)) "row order"
    [ "none/fortress"; "none/smr"; "crashy/fortress"; "crashy/smr" ]
    (List.map (fun r -> r.sp_plan ^ "/" ^ r.sp_stack) p.podc_rows);
  let avail stack plan =
    let r =
      List.find (fun r -> r.sp_stack = stack && r.sp_plan = plan) p.podc_rows
    in
    Option.get r.sp_availability
  in
  (* the paper's claim at the service level: the fortified primary-backup
     construction keeps serving under a fault plan that collapses SMR
     (client-side retries + the proxy tier absorb what the replica group
     cannot) *)
  Alcotest.(check bool) "fortress out-serves smr under crashy" true
    (avail "fortress" "crashy" > avail "smr" "crashy");
  List.iter
    (fun r -> Alcotest.(check bool) "every row issued load" true (r.sp_issued > 0))
    p.podc_rows;
  (* reproducibility: the same config replays bit-identical digests *)
  let p' = Load_compare.podc ~config ~plans:[ Plan.crashy ] spec in
  Alcotest.(check (list string)) "digests reproduce"
    (List.map (fun r -> r.sp_digest) p.podc_rows)
    (List.map (fun r -> r.sp_digest) p'.podc_rows)

let () =
  Alcotest.run "fortress_load"
    [
      ( "spec",
        [
          Alcotest.test_case "parse grammar" `Quick test_spec_parsing;
          Alcotest.test_case "to_string roundtrips" `Quick test_spec_roundtrip;
        ] );
      ("arrival", [ Alcotest.test_case "process means" `Quick test_arrival_means ]);
      ( "plane",
        [
          Alcotest.test_case "open loop serves" `Quick test_open_loop_served;
          Alcotest.test_case "closed loop obeys Little's law" `Quick
            test_closed_loop_littles_law;
          Alcotest.test_case "batching preserves the physical stream" `Quick
            test_batching_preserves_physical_stream;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs invariant on both stacks" `Slow test_load_jobs_invariant;
          Alcotest.test_case "load does not move the attack" `Slow
            test_load_does_not_move_attack_digest;
          Alcotest.test_case "smr availability measured not fabricated" `Slow
            test_smr_availability_is_measured;
        ] );
      ( "podc",
        [ Alcotest.test_case "matched plans, fortress out-serves smr" `Slow test_podc_matched_plans ] );
    ]
