open Fortress_core
module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Pb = Fortress_replication.Pb
module Sign = Fortress_crypto.Sign
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Prng = Fortress_util.Prng

let make ?(config = Deployment.default_config) () = Deployment.create config

(* ---- Nameserver ---- *)

let test_nameserver_publish_lookup () =
  let d = make () in
  let ns = Deployment.nameserver d in
  (match Nameserver.lookup ns "kv" with
  | Some record ->
      Alcotest.(check int) "3 proxies" 3 (Array.length record.Nameserver.proxy_addresses);
      Alcotest.(check int) "3 server indices" 3 (Array.length record.Nameserver.server_indices);
      Alcotest.(check bool) "pb replication" true
        (record.Nameserver.replication = Nameserver.Primary_backup)
  | None -> Alcotest.fail "service missing");
  Alcotest.(check bool) "unknown service" true (Nameserver.lookup ns "nope" = None);
  Alcotest.(check (list string)) "service list" [ "kv" ] (Nameserver.services ns)

let test_nameserver_client_view_hides_servers () =
  let d = make () in
  let view = Nameserver.client_view (Deployment.record d) in
  (* client view lists proxy addresses but only server *indices* *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions indices" true (contains view "indices only");
  let server_addr =
    Fortress_net.Address.to_string (Deployment.server_addresses d).(0)
  in
  Alcotest.(check bool) "no server address leaked" false (contains view server_addr)

let test_nameserver_validation () =
  let ns = Nameserver.create () in
  Alcotest.check_raises "inconsistent record"
    (Invalid_argument "Nameserver.publish: proxy address/key mismatch") (fun () ->
      Nameserver.publish ns
        {
          Nameserver.service = "bad";
          proxy_addresses = [| Fortress_net.Address.make 0 |];
          proxy_keys = [||];
          server_indices = [||];
          server_keys = [||];
          replication = Nameserver.Primary_backup;
        })

(* ---- end-to-end request flow ---- *)

let test_end_to_end_doubly_signed () =
  let d = make () in
  let client = Deployment.new_client d ~name:"c1" in
  let response = ref "" in
  ignore (Client.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:50.0 (Deployment.engine d);
  Alcotest.(check string) "response" "ok" !response;
  Alcotest.(check int) "accepted once despite 3 proxies" 1 (Client.accepted client);
  Alcotest.(check int) "nothing rejected" 0 (Client.rejected client)

let test_multiple_clients () =
  let d = make () in
  let c1 = Deployment.new_client d ~name:"c1" in
  let c2 = Deployment.new_client d ~name:"c2" in
  let r1 = ref "" and r2 = ref "" in
  ignore (Client.submit c1 ~cmd:"put who c1" ~on_response:(fun r -> r1 := r));
  ignore (Client.submit c2 ~cmd:"get missing" ~on_response:(fun r -> r2 := r));
  Engine.run ~until:50.0 (Deployment.engine d);
  Alcotest.(check string) "c1 write" "ok" !r1;
  Alcotest.(check string) "c2 read misses" "err:not_found" !r2

let test_keys_layout () =
  (* FORTRESS: all servers share one key; proxies have distinct keys,
     different from the server key — np + 1 keys in use *)
  let d = make () in
  let server_keys =
    Array.to_list (Array.map Instance.key (Deployment.server_instances d))
  in
  let proxy_keys = Array.to_list (Array.map Instance.key (Deployment.proxy_instances d)) in
  (match server_keys with
  | k :: rest -> List.iter (fun k' -> Alcotest.(check int) "servers share a key" k k') rest
  | [] -> Alcotest.fail "no servers");
  let all = List.hd server_keys :: proxy_keys in
  Alcotest.(check int) "np + 1 distinct keys" 4 (List.length (List.sort_uniq compare all))

let test_rekey_preserves_layout () =
  let d = make () in
  let before = Instance.key (Deployment.server_instances d).(0) in
  let changed = ref 0 in
  for _ = 1 to 50 do
    Deployment.rekey d;
    let now = Instance.key (Deployment.server_instances d).(0) in
    if now <> before then incr changed;
    (* invariant re-checked after every rekey *)
    let sk = Array.map Instance.key (Deployment.server_instances d) in
    Array.iter (fun k -> Alcotest.(check int) "shared" sk.(0) k) sk;
    let all =
      sk.(0) :: Array.to_list (Array.map Instance.key (Deployment.proxy_instances d))
    in
    Alcotest.(check int) "still np+1 distinct" 4 (List.length (List.sort_uniq compare all))
  done;
  Alcotest.(check bool) "keys actually rotate" true (!changed > 45)

let test_recover_keeps_keys () =
  let d = make () in
  let sk = Instance.key (Deployment.server_instances d).(0) in
  let pk = Instance.key (Deployment.proxy_instances d).(1) in
  Deployment.recover d;
  Alcotest.(check int) "server key unchanged" sk (Instance.key (Deployment.server_instances d).(0));
  Alcotest.(check int) "proxy key unchanged" pk (Instance.key (Deployment.proxy_instances d).(1))

let test_compromise_bookkeeping () =
  let d = make () in
  Alcotest.(check bool) "initially sound" false (Deployment.system_compromised d);
  Deployment.compromise_proxy d 0;
  Alcotest.(check bool) "one proxy is not enough" false (Deployment.system_compromised d);
  Deployment.compromise_proxy d 1;
  Deployment.compromise_proxy d 2;
  Alcotest.(check bool) "all proxies = compromised" true (Deployment.system_compromised d);
  Deployment.rekey d;
  Alcotest.(check bool) "rekey evicts" false (Deployment.system_compromised d);
  Deployment.compromise_server d 0;
  Alcotest.(check bool) "any server = compromised" true (Deployment.system_compromised d)

let test_compromised_server_poisons_but_client_detects_nothing () =
  (* paper: compromising the primary defeats the whole fortified system —
     the poisoned response is validly signed and over-signed *)
  let d = make () in
  Deployment.compromise_server d 0;
  let client = Deployment.new_client d ~name:"victim" in
  let response = ref "" in
  ignore (Client.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:50.0 (Deployment.engine d);
  Alcotest.(check string) "poisoned response accepted" "pwned:ok" !response

let test_compromised_proxy_is_availability_only () =
  (* one compromised proxy cannot forge server signatures; the other two
     still deliver the honest response *)
  let d = make () in
  Deployment.compromise_proxy d 0;
  let client = Deployment.new_client d ~name:"c" in
  let response = ref "" in
  ignore (Client.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:50.0 (Deployment.engine d);
  Alcotest.(check string) "honest proxies still serve" "ok" !response

let test_client_rejects_forged_proxy_signature () =
  let d = make () in
  let client = Deployment.new_client d ~name:"c" in
  let engine = Deployment.engine d in
  (* capture a genuine doubly-signed reply by submitting a request *)
  let id = Client.submit client ~cmd:"put k v" ~on_response:(fun _ -> ()) in
  Engine.run ~until:50.0 engine;
  Alcotest.(check bool) "answered" true (Client.response_for client ~id <> None);
  (* now forge: a reply signed by a key outside the nameserver record *)
  let prng = Prng.create ~seed:999 in
  let rogue_secret, _ = Sign.generate prng in
  let reply =
    {
      Pb.request_id = "forged";
      response = "evil";
      server_index = 0;
      signature = Sign.sign rogue_secret "whatever";
    }
  in
  let before = Client.rejected client in
  Client.handle client ~src:(Fortress_net.Address.make 0)
    (Message.Client_reply
       { reply; proxy_index = 0; proxy_signature = Sign.sign rogue_secret "x" });
  Alcotest.(check int) "rejected" (before + 1) (Client.rejected client)

let test_client_rejects_singly_signed_when_fortified () =
  let d = make () in
  let client = Deployment.new_client d ~name:"c" in
  (* a server reply delivered directly (bypassing proxies) must be refused
     by a fortified client regardless of its signature: the message shape
     itself is wrong *)
  let secret, _ = Sign.generate (Prng.create ~seed:1) in
  let reply =
    { Pb.request_id = "direct"; response = "ok"; server_index = 0;
      signature = Sign.sign secret "x" }
  in
  let before = Client.rejected client in
  Client.handle client ~src:(Fortress_net.Address.make 0) (Message.Server (Pb.Reply reply));
  Alcotest.(check int) "singly-signed refused" (before + 1) (Client.rejected client)

(* ---- proxy detection ---- *)

let test_proxy_blocks_floods () =
  let d =
    make
      ~config:
        {
          Deployment.default_config with
          proxy = { Proxy.default_config with detection_threshold = 5; detection_window = 100.0 };
        }
      ()
  in
  let engine = Deployment.engine d in
  let net = Deployment.network d in
  let attacker = Deployment.new_attacker_address d ~name:"atk" ~handler:(fun ~src:_ _ -> ()) in
  let proxy = (Deployment.proxies d).(0) in
  let paddr = (Deployment.proxy_addresses d).(0) in
  for i = 1 to 20 do
    Network.send net ~src:attacker ~dst:paddr
      (Message.Client_request
         { id = Printf.sprintf "p%d" i; cmd = Printf.sprintf "probe:%d" i; client = attacker })
  done;
  Engine.run ~until:50.0 engine;
  Alcotest.(check bool) "attacker blocked" true (Proxy.is_blocked proxy attacker);
  Alcotest.(check bool) "invalid requests logged" true (Proxy.invalid_observed proxy >= 5);
  Alcotest.(check bool) "flood not fully forwarded" true (Proxy.forwarded proxy < 20)

let test_proxy_window_slides () =
  let d =
    make
      ~config:
        {
          Deployment.default_config with
          proxy = { Proxy.default_config with detection_threshold = 5; detection_window = 10.0 };
        }
      ()
  in
  let engine = Deployment.engine d in
  let net = Deployment.network d in
  let attacker = Deployment.new_attacker_address d ~name:"slow" ~handler:(fun ~src:_ _ -> ()) in
  let proxy = (Deployment.proxies d).(0) in
  let paddr = (Deployment.proxy_addresses d).(0) in
  (* 20 probes, but spaced wider than the window: never enough in-window *)
  for i = 1 to 20 do
    ignore
      (Engine.schedule engine
         ~delay:(float_of_int i *. 15.0)
         (fun () ->
           Network.send net ~src:attacker ~dst:paddr
             (Message.Client_request
                { id = Printf.sprintf "q%d" i; cmd = "probe:1"; client = attacker })))
  done;
  Engine.run ~until:400.0 engine;
  Alcotest.(check bool) "paced attacker evades" false (Proxy.is_blocked proxy attacker);
  Alcotest.(check int) "but every probe was logged" 20 (Proxy.invalid_observed proxy)

let test_proxy_legit_traffic_not_flagged () =
  let d = make () in
  let client = Deployment.new_client d ~name:"c" in
  for i = 1 to 30 do
    ignore (Client.submit client ~cmd:(Printf.sprintf "put k%d v" i) ~on_response:(fun _ -> ()))
  done;
  Engine.run ~until:100.0 (Deployment.engine d);
  Array.iter
    (fun p -> Alcotest.(check int) "no invalid requests" 0 (Proxy.invalid_observed p))
    (Deployment.proxies d);
  Alcotest.(check int) "all served" 30 (Client.accepted client)

(* ---- obfuscation scheduling ---- *)

let test_obfuscation_po_steps () =
  let d = make () in
  let sched = Obfuscation.attach d ~mode:Obfuscation.PO ~period:10.0 in
  let epoch0 = Instance.epoch (Deployment.server_instances d).(0) in
  Engine.run ~until:55.0 (Deployment.engine d);
  Alcotest.(check int) "5 boundaries" 5 (Obfuscation.steps_completed sched);
  Alcotest.(check int) "5 rekeys" (epoch0 + 5) (Instance.epoch (Deployment.server_instances d).(0))

let test_obfuscation_so_keeps_keys () =
  let d = make () in
  let key0 = Instance.key (Deployment.server_instances d).(0) in
  ignore (Obfuscation.attach d ~mode:Obfuscation.SO ~period:10.0);
  Engine.run ~until:55.0 (Deployment.engine d);
  Alcotest.(check int) "key stable under SO" key0 (Instance.key (Deployment.server_instances d).(0))

let test_obfuscation_detach () =
  let d = make () in
  let sched = Obfuscation.attach d ~mode:Obfuscation.PO ~period:10.0 in
  Engine.run ~until:25.0 (Deployment.engine d);
  Obfuscation.detach sched;
  Engine.run ~until:100.0 (Deployment.engine d);
  Alcotest.(check int) "no boundaries after detach" 2 (Obfuscation.steps_completed sched)

let test_obfuscation_evicts_intruder () =
  let d = make () in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:10.0);
  Deployment.compromise_server d 1;
  Alcotest.(check bool) "compromised" true (Deployment.system_compromised d);
  Engine.run ~until:15.0 (Deployment.engine d);
  Alcotest.(check bool) "evicted at the boundary" false (Deployment.system_compromised d)

let test_mode_strings () =
  Alcotest.(check bool) "po" true (Obfuscation.mode_of_string "po" = Some Obfuscation.PO);
  Alcotest.(check bool) "so" true (Obfuscation.mode_of_string "so" = Some Obfuscation.SO);
  Alcotest.(check bool) "junk" true (Obfuscation.mode_of_string "x" = None)

(* ---- S1 mode (np = 0) ---- *)

let test_unfortified_s1_direct_clients () =
  let d = make ~config:{ Deployment.default_config with np = 0 } () in
  let client = Deployment.new_client d ~name:"c" in
  let response = ref "" in
  ignore (Client.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:50.0 (Deployment.engine d);
  Alcotest.(check string) "served directly" "ok" !response

let test_unfortified_s1_compromise_condition () =
  let d = make ~config:{ Deployment.default_config with np = 0 } () in
  Deployment.compromise_server d 2;
  Alcotest.(check bool) "any server loss compromises S1" true (Deployment.system_compromised d)

(* ---- SMR deployment (S0) ---- *)

let test_smr_deployment_basic () =
  let d = Smr_deployment.create Smr_deployment.default_config in
  let client = Smr_deployment.new_client d ~name:"c" in
  let response = ref "" in
  ignore (Smr_deployment.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:100.0 (Smr_deployment.engine d);
  Alcotest.(check string) "voted response" "ok" !response;
  Alcotest.(check int) "accepted" 1 (Smr_deployment.client_accepted client)

let test_smr_deployment_diverse_keys () =
  let d = Smr_deployment.create Smr_deployment.default_config in
  let keys = Array.to_list (Array.map Instance.key (Smr_deployment.instances d)) in
  Alcotest.(check int) "all keys distinct" 4 (List.length (List.sort_uniq compare keys))

let test_smr_deployment_batches () =
  let d = Smr_deployment.create Smr_deployment.default_config in
  let batches = Smr_deployment.batches d in
  Alcotest.(check int) "ceil(n/f) batches" 4 (List.length batches);
  List.iter (fun b -> Alcotest.(check int) "at most f" 1 (List.length b)) batches;
  let all = List.concat batches |> List.sort compare in
  Alcotest.(check (list int)) "covers all replicas" [ 0; 1; 2; 3 ] all

let test_smr_deployment_batched_recovery_keeps_service_up () =
  let d = Smr_deployment.create Smr_deployment.default_config in
  ignore (Smr_deployment.attach_schedule d ~mode:Obfuscation.PO ~period:200.0);
  let client = Smr_deployment.new_client d ~name:"c" in
  let served = ref 0 in
  (* traffic across several recovery cycles *)
  for i = 0 to 9 do
    ignore
      (Engine.schedule (Smr_deployment.engine d)
         ~delay:(float_of_int i *. 90.0)
         (fun () ->
           ignore
             (Smr_deployment.submit client ~cmd:"incr"
                ~on_response:(fun _ -> incr served))))
  done;
  Engine.run ~until:1500.0 (Smr_deployment.engine d);
  Alcotest.(check bool)
    (Printf.sprintf "service stayed available across recoveries (%d/10)" !served)
    true (!served >= 8)

let test_smr_deployment_compromise_condition () =
  let d = Smr_deployment.create Smr_deployment.default_config in
  Smr_deployment.compromise d 0;
  Alcotest.(check bool) "f intrusions tolerated" false (Smr_deployment.system_compromised d);
  Smr_deployment.compromise d 2;
  Alcotest.(check bool) "f+1 intrusions fatal" true (Smr_deployment.system_compromised d)

let test_smr_deployment_rekey_batch_restores_state () =
  let d = Smr_deployment.create { Smr_deployment.default_config with seed = 3 } in
  let client = Smr_deployment.new_client d ~name:"c" in
  let done_ = ref 0 in
  for _ = 1 to 3 do
    ignore (Smr_deployment.submit client ~cmd:"put a b" ~on_response:(fun _ -> incr done_))
  done;
  Engine.run ~until:100.0 (Smr_deployment.engine d);
  let key_before = Instance.key (Smr_deployment.instances d).(3) in
  Smr_deployment.rekey_batch d [ 3 ];
  Engine.run ~until:200.0 (Smr_deployment.engine d);
  Alcotest.(check bool) "fresh key" true (Instance.key (Smr_deployment.instances d).(3) <> key_before);
  let module Smr = Fortress_replication.Smr in
  let replicas = Smr_deployment.replicas d in
  Alcotest.(check bool) "transfer finished" false (Smr.in_state_transfer replicas.(3));
  Alcotest.(check string) "state restored from peers"
    (Smr.service_digest replicas.(0))
    (Smr.service_digest replicas.(3))

(* ---- client retries over lossy links ---- *)

let test_client_retries_through_loss () =
  let d =
    make
      ~config:
        {
          Deployment.default_config with
          latency = Fortress_net.Latency.lossy (Fortress_net.Latency.constant 0.5) ~drop:0.4;
          seed = 6;
        }
      ()
  in
  let client = Deployment.new_client d ~name:"lossy-client" in
  let served = ref 0 in
  for i = 1 to 10 do
    ignore
      (Client.submit client
         ~cmd:(Printf.sprintf "put k%d v" i)
         ~on_response:(fun _ -> incr served))
  done;
  Engine.run ~until:500.0 (Deployment.engine d);
  Alcotest.(check int) "all requests eventually served" 10 !served

let test_client_retry_answers_from_proxy_cache () =
  (* lose the first submission entirely via a partition, heal, and let the
     retry be answered *)
  let d = make ~config:{ Deployment.default_config with seed = 8 } () in
  let engine = Deployment.engine d in
  let net = Deployment.network d in
  let client = Deployment.new_client d ~name:"c" in
  let client_addr =
    (* the client registered last; find its address by name *)
    List.find
      (fun a -> Network.name net a = "c")
      (Network.nodes net)
  in
  Array.iter (fun p -> Network.partition net client_addr p) (Deployment.proxy_addresses d);
  let served = ref "" in
  ignore (Client.submit client ~cmd:"put k v" ~on_response:(fun r -> served := r));
  Engine.run ~until:10.0 engine;
  Alcotest.(check string) "still unanswered" "" !served;
  Network.heal_all net;
  Engine.run ~until:200.0 engine;
  Alcotest.(check string) "retry succeeded" "ok" !served;
  Alcotest.(check bool) "retries were sent" true (Client.retries_sent client >= 1)

let test_client_no_duplicate_callback_on_retry () =
  let d = make ~config:{ Deployment.default_config with seed = 9 } () in
  let client = Deployment.new_client d ~name:"c" in
  let calls = ref 0 in
  ignore (Client.submit client ~cmd:"put k v" ~on_response:(fun _ -> incr calls));
  (* run long enough for several retry periods to elapse *)
  Engine.run ~until:300.0 (Deployment.engine d);
  Alcotest.(check int) "callback fired exactly once" 1 !calls

(* ---- FORTRESS over an SMR tier ---- *)

let test_smr_fortress_end_to_end () =
  let f = Smr_fortress.create Smr_fortress.default_config in
  let client = Smr_fortress.new_client f ~name:"c" in
  let response = ref "" in
  ignore (Smr_fortress.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:100.0 (Smr_fortress.engine f);
  Alcotest.(check string) "served through proxy vote" "ok" !response;
  Alcotest.(check int) "accepted once" 1 (Smr_fortress.client_accepted client);
  Alcotest.(check bool) "a proxy relayed" true
    (Smr_fortress.proxy_relayed f 0 + Smr_fortress.proxy_relayed f 1
     + Smr_fortress.proxy_relayed f 2
    > 0)

let test_smr_fortress_masks_one_intrusion () =
  (* the crucial difference from the PB tier: one compromised replica is
     masked by the proxies' f+1 vote, so the client still gets the honest
     answer *)
  let f = Smr_fortress.create Smr_fortress.default_config in
  Smr_fortress.compromise_server f 1;
  Alcotest.(check bool) "one intrusion tolerated" false (Smr_fortress.system_compromised f);
  let client = Smr_fortress.new_client f ~name:"c" in
  let response = ref "" in
  ignore (Smr_fortress.submit client ~cmd:"put k v" ~on_response:(fun r -> response := r));
  Engine.run ~until:100.0 (Smr_fortress.engine f);
  Alcotest.(check string) "honest answer despite the intruder" "ok" !response

let test_smr_fortress_two_intrusions_fatal () =
  let f = Smr_fortress.create Smr_fortress.default_config in
  Smr_fortress.compromise_server f 0;
  Smr_fortress.compromise_server f 1;
  Alcotest.(check bool) "f+1 intrusions compromise S0-style" true
    (Smr_fortress.system_compromised f)

let test_smr_fortress_proxy_detection () =
  let f =
    Smr_fortress.create { Smr_fortress.default_config with proxy_detection_threshold = 5 }
  in
  let engine = Smr_fortress.engine f in
  let client = Smr_fortress.new_client f ~name:"atk-client" in
  ignore client;
  (* drive probes straight at proxy 0 from a registered address *)
  let net_probe i =
    ignore
      (Engine.schedule engine ~delay:(float_of_int i) (fun () ->
           ignore
             (Smr_fortress.submit client
                ~cmd:(Printf.sprintf "probe:%d" i)
                ~on_response:(fun _ -> ()))))
  in
  for i = 1 to 15 do
    net_probe i
  done;
  Engine.run ~until:100.0 engine;
  Alcotest.(check bool) "probes logged" true (Smr_fortress.proxy_invalid_observed f 0 >= 5)

let test_smr_fortress_diverse_server_keys () =
  let f = Smr_fortress.create Smr_fortress.default_config in
  let keys =
    Array.to_list (Array.map Instance.key (Smr_fortress.server_instances f))
    @ Array.to_list (Array.map Instance.key (Smr_fortress.proxy_instances f))
  in
  Alcotest.(check int) "all seven keys distinct" 7 (List.length (List.sort_uniq compare keys))

let test_smr_fortress_batched_obfuscation () =
  let f = Smr_fortress.create { Smr_fortress.default_config with seed = 11 } in
  Smr_fortress.attach_schedule f ~mode:Obfuscation.PO ~period:200.0;
  let client = Smr_fortress.new_client f ~name:"c" in
  let served = ref 0 in
  for i = 0 to 5 do
    ignore
      (Engine.schedule (Smr_fortress.engine f)
         ~delay:(float_of_int i *. 150.0)
         (fun () ->
           ignore
             (Smr_fortress.submit client
                ~cmd:(Printf.sprintf "put k%d v" i)
                ~on_response:(fun _ -> incr served))))
  done;
  Engine.run ~until:1200.0 (Smr_fortress.engine f);
  Alcotest.(check bool)
    (Printf.sprintf "service available through recovery cycles (%d/6)" !served)
    true (!served >= 5);
  (* proxies rotated keys at each of the boundaries *)
  Alcotest.(check bool) "proxy epochs advanced" true
    (Instance.epoch (Smr_fortress.proxy_instances f).(0) >= 5)

let () =
  Alcotest.run "fortress_core"
    [
      ( "nameserver",
        [
          Alcotest.test_case "publish and lookup" `Quick test_nameserver_publish_lookup;
          Alcotest.test_case "client view hides servers" `Quick
            test_nameserver_client_view_hides_servers;
          Alcotest.test_case "validation" `Quick test_nameserver_validation;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "doubly-signed flow" `Quick test_end_to_end_doubly_signed;
          Alcotest.test_case "multiple clients" `Quick test_multiple_clients;
          Alcotest.test_case "key layout" `Quick test_keys_layout;
          Alcotest.test_case "rekey preserves layout" `Quick test_rekey_preserves_layout;
          Alcotest.test_case "recover keeps keys" `Quick test_recover_keeps_keys;
          Alcotest.test_case "compromise bookkeeping" `Quick test_compromise_bookkeeping;
          Alcotest.test_case "compromised server poisons" `Quick
            test_compromised_server_poisons_but_client_detects_nothing;
          Alcotest.test_case "compromised proxy availability only" `Quick
            test_compromised_proxy_is_availability_only;
          Alcotest.test_case "forged proxy signature rejected" `Quick
            test_client_rejects_forged_proxy_signature;
          Alcotest.test_case "singly-signed refused when fortified" `Quick
            test_client_rejects_singly_signed_when_fortified;
        ] );
      ( "proxy-detection",
        [
          Alcotest.test_case "flood blocked" `Quick test_proxy_blocks_floods;
          Alcotest.test_case "sliding window" `Quick test_proxy_window_slides;
          Alcotest.test_case "legit traffic clean" `Quick test_proxy_legit_traffic_not_flagged;
        ] );
      ( "obfuscation",
        [
          Alcotest.test_case "po steps and epochs" `Quick test_obfuscation_po_steps;
          Alcotest.test_case "so keeps keys" `Quick test_obfuscation_so_keeps_keys;
          Alcotest.test_case "detach" `Quick test_obfuscation_detach;
          Alcotest.test_case "evicts intruder" `Quick test_obfuscation_evicts_intruder;
          Alcotest.test_case "mode strings" `Quick test_mode_strings;
        ] );
      ( "s1-mode",
        [
          Alcotest.test_case "direct clients" `Quick test_unfortified_s1_direct_clients;
          Alcotest.test_case "compromise condition" `Quick test_unfortified_s1_compromise_condition;
        ] );
      ( "client-retries",
        [
          Alcotest.test_case "through message loss" `Quick test_client_retries_through_loss;
          Alcotest.test_case "answered from proxy cache" `Quick
            test_client_retry_answers_from_proxy_cache;
          Alcotest.test_case "no duplicate callback" `Quick test_client_no_duplicate_callback_on_retry;
        ] );
      ( "smr-fortress",
        [
          Alcotest.test_case "end to end" `Quick test_smr_fortress_end_to_end;
          Alcotest.test_case "masks one intrusion" `Quick test_smr_fortress_masks_one_intrusion;
          Alcotest.test_case "two intrusions fatal" `Quick test_smr_fortress_two_intrusions_fatal;
          Alcotest.test_case "proxy detection" `Quick test_smr_fortress_proxy_detection;
          Alcotest.test_case "diverse keys" `Quick test_smr_fortress_diverse_server_keys;
          Alcotest.test_case "batched obfuscation" `Slow test_smr_fortress_batched_obfuscation;
        ] );
      ( "smr-deployment",
        [
          Alcotest.test_case "basic vote" `Quick test_smr_deployment_basic;
          Alcotest.test_case "diverse keys" `Quick test_smr_deployment_diverse_keys;
          Alcotest.test_case "batches" `Quick test_smr_deployment_batches;
          Alcotest.test_case "batched recovery availability" `Slow
            test_smr_deployment_batched_recovery_keeps_service_up;
          Alcotest.test_case "compromise condition" `Quick test_smr_deployment_compromise_condition;
          Alcotest.test_case "rekey batch restores state" `Quick
            test_smr_deployment_rekey_batch_restores_state;
        ] );
    ]
