(* Adaptive-attacker determinism suite: the oblivious strategy must be
   byte-identical to the legacy fixed-schedule campaign, directives must
   act only at step boundaries, and stale-key-rush must strictly lower EL
   under the chaos rung (where the rekey daemon is wedged). *)

open Fortress_attack
module Inject = Fortress_exp.Inject
module Plan = Fortress_faults.Plan
module Deployment = Fortress_core.Deployment
module Smr_deployment = Fortress_core.Smr_deployment
module Obfuscation = Fortress_core.Obfuscation
module Keyspace = Fortress_defense.Keyspace
module Stats = Campaign_intf.Stats

let small_config ~jobs =
  { Inject.default_config with trials = 6; chi = 128; seed = 42; jobs; max_steps = 200 }

(* ---- oblivious is the fixed schedule, to the byte ---- *)

let test_oblivious_bit_identical_to_legacy () =
  let cfg = small_config ~jobs:1 in
  let legacy = Inject.run_plan cfg Plan.chaos in
  let oblivious = Inject.run_plan ~strategy:Adaptive.Strategy.oblivious cfg Plan.chaos in
  Alcotest.(check string) "same trace digest" legacy.Inject.digest oblivious.Inject.digest;
  Alcotest.(check (float 1e-9)) "same mean EL"
    (Inject.mean_el cfg legacy) (Inject.mean_el cfg oblivious);
  Alcotest.(check int) "no directives ever applied" 0 oblivious.Inject.directives

let test_oblivious_jobs_invariant () =
  let r1 = Inject.run_plan ~strategy:Adaptive.Strategy.oblivious (small_config ~jobs:1) Plan.chaos in
  let r4 = Inject.run_plan ~strategy:Adaptive.Strategy.oblivious (small_config ~jobs:4) Plan.chaos in
  Alcotest.(check string) "digest invariant in jobs" r1.Inject.digest r4.Inject.digest

let test_adaptive_jobs_invariant () =
  let r1 =
    Inject.run_plan ~strategy:Adaptive.Strategy.stale_key_rush (small_config ~jobs:1) Plan.chaos
  in
  let r4 =
    Inject.run_plan ~strategy:Adaptive.Strategy.stale_key_rush (small_config ~jobs:4) Plan.chaos
  in
  Alcotest.(check string) "digest invariant in jobs" r1.Inject.digest r4.Inject.digest

(* ---- stale-key-rush beats oblivious where the rekey daemon is wedged ---- *)

let test_stale_key_rush_lowers_el_under_chaos () =
  let cfg = { (small_config ~jobs:4) with trials = 12; chi = 256; max_steps = 400 } in
  let oblivious = Inject.run_plan cfg Plan.chaos in
  let rush = Inject.run_plan ~strategy:Adaptive.Strategy.stale_key_rush cfg Plan.chaos in
  let el_obl = Inject.mean_el cfg oblivious and el_rush = Inject.mean_el cfg rush in
  Alcotest.(check bool)
    (Printf.sprintf "rush EL %.1f < oblivious EL %.1f" el_rush el_obl)
    true (el_rush < el_obl);
  Alcotest.(check bool) "the rush actually adapted" true (rush.Inject.directives > 0)

(* ---- the SMR stack accepts the same plans and strategies ---- *)

let test_smr_plan_runs_and_is_jobs_invariant () =
  let cfg = small_config ~jobs:1 in
  let r1 = Inject.run_smr_plan ~strategy:Adaptive.Strategy.partition_follower cfg Plan.partition in
  let r4 =
    Inject.run_smr_plan ~strategy:Adaptive.Strategy.partition_follower
      (small_config ~jobs:4) Plan.partition
  in
  Alcotest.(check string) "digest invariant in jobs" r1.Inject.digest r4.Inject.digest;
  Alcotest.(check bool) "timeline actions actually fired" true
    (r1.Inject.faults.Fortress_faults.Injector.timeline_fired > 0)

let test_smr_oblivious_matches_legacy () =
  let cfg = small_config ~jobs:1 in
  let legacy = Inject.run_smr_plan cfg Plan.crashy in
  let oblivious =
    Inject.run_smr_plan ~strategy:Adaptive.Strategy.oblivious cfg Plan.crashy
  in
  Alcotest.(check string) "same trace digest" legacy.Inject.digest oblivious.Inject.digest

(* ---- directives act at step boundaries only ---- *)

let observed_deployment ?(keys = 1 lsl 12) ?(seed = 3) () =
  Deployment.create
    { Deployment.default_config with keyspace = Keyspace.of_size keys; seed }

(* Staging a directive mid-step must leave the live settings untouched
   until the engine crosses the next boundary, for any staging time within
   the step. qcheck drives the stage offset and the directive payload. *)
let prop_directive_applies_only_at_boundary =
  QCheck.Test.make ~count:30 ~name:"directive applies only at next boundary"
    QCheck.(pair (float_bound_exclusive 99.0) (float_bound_inclusive 0.9))
    (fun (offset, kappa) ->
      let offset = Float.max 0.1 offset in
      let d = observed_deployment () in
      ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
      let c =
        Campaign.launch d (Campaign.make_config ~omega:4 ~kappa:0.5 ~period:100.0 ~seed:7 ())
      in
      Campaign.set_boundary_hook c ~name:"qcheck" (fun _ -> ());
      let engine = Deployment.engine d in
      let module Engine = Fortress_sim.Engine in
      (* run into step 1, stage at [offset], check unchanged through the
         rest of the step, changed right after the boundary *)
      let start = Engine.now engine in
      Engine.run ~until:(start +. offset) engine;
      Campaign.stage c (Directive.make ~kappa ());
      let before = (Campaign.settings c).Campaign.kappa in
      Engine.run ~until:(start +. 99.9) engine;
      let still = (Campaign.settings c).Campaign.kappa in
      Engine.run ~until:(start +. 100.1) engine;
      let after = (Campaign.settings c).Campaign.kappa in
      before = 0.5 && still = 0.5 && after = kappa)

let test_staged_directive_merges_last_wins () =
  let d = observed_deployment () in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let c =
    Campaign.launch d (Campaign.make_config ~omega:4 ~kappa:0.5 ~period:100.0 ~seed:7 ())
  in
  Campaign.set_boundary_hook c ~name:"merge" (fun _ -> ());
  let engine = Deployment.engine d in
  let module Engine = Fortress_sim.Engine in
  Engine.run ~until:(Engine.now engine +. 10.0) engine;
  Campaign.stage c (Directive.make ~kappa:0.9 ~launchpad:Directive.Next_step ());
  Campaign.stage c (Directive.make ~kappa:0.2 ());
  Engine.run ~until:(Engine.now engine +. 100.0) engine;
  let s = Campaign.settings c in
  Alcotest.(check (float 1e-9)) "later kappa wins" 0.2 s.Campaign.kappa;
  Alcotest.(check bool) "earlier launchpad survives" true
    (s.Campaign.launchpad = Campaign.Next_step)

let test_oblivious_campaign_settings_never_move () =
  let d = observed_deployment () in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let a =
    Adaptive.launch d
      (Adaptive.make_config ~strategy:Adaptive.Strategy.oblivious
         (Campaign.make_config ~omega:4 ~kappa:0.5 ~period:100.0 ~seed:7 ()))
  in
  ignore (Adaptive.run_until_compromise a ~max_steps:20);
  let s = Campaign.settings (Adaptive.campaign a) in
  Alcotest.(check (float 1e-9)) "kappa untouched" 0.5 s.Campaign.kappa;
  Alcotest.(check bool) "no exclusions" true (s.Campaign.excluded = []);
  Alcotest.(check int) "no directives" 0
    (Adaptive.stats a).Stats.directives_applied

(* ---- node-id round-trips (digest stability for satellite 3) ---- *)

let test_node_id_round_trip () =
  let module N = Fortress_model.Node_id in
  List.iter
    (fun n ->
      match N.of_string (N.to_string n) with
      | Some n' -> Alcotest.(check bool) (N.to_string n ^ " round-trips") true (N.equal n n')
      | None -> Alcotest.fail ("failed to parse " ^ N.to_string n))
    [ N.Server 0; N.Server 12; N.Proxy 3; N.Replica 2; N.Nameserver ];
  (* the legacy fault-event spellings are preserved verbatim *)
  Alcotest.(check string) "server spelling" "server2" (N.to_string (N.Server 2));
  Alcotest.(check string) "proxy spelling" "proxy0" (N.to_string (N.Proxy 0));
  Alcotest.(check string) "nameserver spelling" "nameserver" (N.to_string N.Nameserver);
  Alcotest.(check bool) "junk rejected" true (N.of_string "sideways9" = None)

let () =
  Alcotest.run "fortress_adaptive"
    [
      ( "oblivious-anchor",
        [
          Alcotest.test_case "bit-identical to legacy" `Quick
            test_oblivious_bit_identical_to_legacy;
          Alcotest.test_case "jobs invariant" `Quick test_oblivious_jobs_invariant;
          Alcotest.test_case "settings never move" `Quick
            test_oblivious_campaign_settings_never_move;
        ] );
      ( "adaptation",
        [
          Alcotest.test_case "stale-key-rush lowers EL under chaos" `Slow
            test_stale_key_rush_lowers_el_under_chaos;
          Alcotest.test_case "adaptive jobs invariant" `Quick test_adaptive_jobs_invariant;
        ] );
      ( "smr-stack",
        [
          Alcotest.test_case "plans fold onto S0 and stay invariant" `Quick
            test_smr_plan_runs_and_is_jobs_invariant;
          Alcotest.test_case "oblivious matches legacy on S0" `Quick
            test_smr_oblivious_matches_legacy;
        ] );
      ( "boundaries",
        [
          QCheck_alcotest.to_alcotest prop_directive_applies_only_at_boundary;
          Alcotest.test_case "staged merge, last wins" `Quick
            test_staged_directive_merges_last_wins;
        ] );
      ( "node-id",
        [ Alcotest.test_case "string round-trip" `Quick test_node_id_round_trip ] );
    ]
