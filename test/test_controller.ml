(* Adaptive-defender contract suite: the static controller must be
   byte-identical to the undefended run, directives must act only at
   controller boundaries, and the alarm-rekey strategy must provably
   shorten the rekey schedule when a staleness alarm fires. *)

open Fortress_defense
module Inject = Fortress_exp.Inject
module Plan = Fortress_faults.Plan
module Deployment = Fortress_core.Deployment
module Defense_control = Fortress_core.Defense_control
module Obfuscation = Fortress_core.Obfuscation
module Engine = Fortress_sim.Engine
module Sink = Fortress_obs.Sink
module Event = Fortress_obs.Event

let small_config ~jobs =
  { Inject.default_config with trials = 6; chi = 128; seed = 42; jobs; max_steps = 200 }

(* ---- static is the undefended run, to the byte ---- *)

let test_static_bit_identical_to_undefended () =
  let cfg = small_config ~jobs:1 in
  let plain = Inject.run_plan cfg Plan.chaos in
  let static = Inject.run_plan ~defender:Controller.Strategy.static cfg Plan.chaos in
  Alcotest.(check string) "same trace digest" plain.Inject.digest static.Inject.digest;
  Alcotest.(check (float 1e-9)) "same mean EL"
    (Inject.mean_el cfg plain) (Inject.mean_el cfg static);
  Alcotest.(check int) "no directives ever applied" 0 static.Inject.defender_directives

let test_static_jobs_invariant () =
  let r1 =
    Inject.run_plan ~defender:Controller.Strategy.static (small_config ~jobs:1) Plan.chaos
  in
  let r4 =
    Inject.run_plan ~defender:Controller.Strategy.static (small_config ~jobs:4) Plan.chaos
  in
  Alcotest.(check string) "digest invariant in jobs" r1.Inject.digest r4.Inject.digest

let test_defended_jobs_invariant () =
  let r1 =
    Inject.run_plan ~defender:Controller.Strategy.alarm_rekey (small_config ~jobs:1)
      Plan.chaos
  in
  let r4 =
    Inject.run_plan ~defender:Controller.Strategy.alarm_rekey (small_config ~jobs:4)
      Plan.chaos
  in
  Alcotest.(check string) "digest invariant in jobs" r1.Inject.digest r4.Inject.digest;
  Alcotest.(check bool) "the defender actually acted" true
    (r1.Inject.defender_directives > 0)

let test_smr_static_matches_undefended () =
  let cfg = small_config ~jobs:1 in
  let plain = Inject.run_smr_plan cfg Plan.crashy in
  let static = Inject.run_smr_plan ~defender:Controller.Strategy.static cfg Plan.crashy in
  Alcotest.(check string) "same trace digest" plain.Inject.digest static.Inject.digest

(* ---- directives act at controller boundaries only ---- *)

(* A bare controller over a bare engine: staging mid-step must leave the
   live settings untouched until the next boundary, for any staging time
   within the step and any payload. qcheck drives both. *)
let prop_directive_applies_only_at_boundary =
  QCheck.Test.make ~count:30 ~name:"defender directive applies only at next boundary"
    QCheck.(pair (float_bound_exclusive 99.0) (int_range 1 9))
    (fun (offset, threshold) ->
      let offset = Float.max 0.1 offset in
      let engine = Engine.create () in
      let _tl, signal = Engine.attach_telemetry ~window:100.0 ~alarms:false engine in
      let c =
        Controller.launch ~engine ~signal ~period:100.0
          ~defaults:{ Controller.rekey_period = 100.0; threshold = 50 }
          ~actuator:Controller.null_actuator Controller.Strategy.static
      in
      (* keep the queue non-empty so the engine can run past the horizon *)
      ignore (Engine.every engine ~period:10.0 (fun () -> ()));
      let start = Engine.now engine in
      Engine.run ~until:(start +. offset) engine;
      Controller.stage c (Defense_directive.make ~rekey_period:60.0 ~threshold ());
      let before =
        (Controller.effective_rekey_period c, Controller.effective_threshold c)
      in
      Engine.run ~until:(start +. 99.9) engine;
      let still =
        (Controller.effective_rekey_period c, Controller.effective_threshold c)
      in
      Engine.run ~until:(start +. 100.1) engine;
      let after =
        (Controller.effective_rekey_period c, Controller.effective_threshold c)
      in
      before = (100.0, 50) && still = (100.0, 50) && after = (60.0, threshold))

let test_staged_directive_merges_last_wins () =
  let engine = Engine.create () in
  let _tl, signal = Engine.attach_telemetry ~window:100.0 ~alarms:false engine in
  let c =
    Controller.launch ~engine ~signal ~period:100.0
      ~defaults:{ Controller.rekey_period = 100.0; threshold = 50 }
      ~actuator:Controller.null_actuator Controller.Strategy.static
  in
  ignore (Engine.every engine ~period:10.0 (fun () -> ()));
  Controller.stage c (Defense_directive.make ~rekey_period:60.0 ~threshold:7 ());
  (* the later stage wins field-wise: period overridden, threshold kept *)
  Controller.stage c (Defense_directive.make ~rekey_period:40.0 ());
  Engine.run ~until:(Engine.now engine +. 100.1) engine;
  Alcotest.(check (float 1e-9)) "later period wins" 40.0
    (Controller.effective_rekey_period c);
  Alcotest.(check int) "earlier threshold survives" 7 (Controller.effective_threshold c);
  Alcotest.(check int) "one applying boundary" 1 (Controller.directives_applied c)

(* ---- hand-verified alarm-rekey staleness trace ----

   Obfuscation period 100, telemetry window 100, daemon stalled at
   t = 150. The only real rekey is at t = 100 (window 1), so windows
   2, 3, 4, 5 — closing at t = 300..600 — score staleness 100, 200, 300,
   400 (windows since the last rekey window, times the width); the
   staleness CUSUM (slack 150, threshold 250) accumulates
   max(0, 100-150) = 0, then 50, 200, 450 — the alarm provably fires at
   the t = 600 close and at no earlier window. The obfuscation boundary
   (armed first) emits its stall-skip at t = 600, closing the window;
   the controller's boundary then observes the alarm, halves the period
   and forces an immediate rekey — landing at exactly t = 600, while the
   daemon is still wedged. *)
let test_alarm_rekey_staleness_trace () =
  let deployment =
    Deployment.create
      { Deployment.default_config with keyspace = Keyspace.of_size 4096; seed = 11 }
  in
  let engine = Deployment.engine deployment in
  let rekey_times = ref [] in
  ignore
    (Sink.attach (Engine.sink engine) (fun ~time ev ->
         match ev with Event.Rekey _ -> rekey_times := time :: !rekey_times | _ -> ()));
  let obfuscation = Obfuscation.attach deployment ~mode:Obfuscation.PO ~period:100.0 in
  let c =
    Defense_control.attach deployment ~obfuscation Controller.Strategy.alarm_rekey
  in
  ignore (Engine.schedule engine ~delay:150.0 (fun () -> Obfuscation.set_stalled obfuscation true));
  Engine.run ~until:599.0 engine;
  Alcotest.(check int) "no directive before the alarm window closes" 0
    (Controller.directives_applied c);
  Alcotest.(check (list (float 1e-9))) "only the t=100 rekey so far" [ 100.0 ]
    (List.rev !rekey_times);
  Engine.run ~until:601.0 engine;
  Alcotest.(check int) "alarm boundary applied a directive" 1
    (Controller.directives_applied c);
  Alcotest.(check (float 1e-9)) "rekey period halved" 50.0
    (Controller.effective_rekey_period c);
  Alcotest.(check (list (float 1e-9))) "forced rekey at the alarm boundary, mid-stall"
    [ 100.0; 600.0 ] (List.rev !rekey_times);
  (* the shortened schedule takes over once the daemon recovers: with the
     staleness signal quiet for two boundaries the period is restored *)
  Obfuscation.set_stalled obfuscation false;
  Engine.run ~until:1000.0 engine;
  Alcotest.(check (float 1e-9)) "restored after quiet boundaries" 100.0
    (Controller.effective_rekey_period c)

(* ---- the MDP benchmark ---- *)

let test_mdp_policy_nontrivial_and_beats_static () =
  let m = Mdp.default_model in
  let sol = Mdp.solve m in
  let used =
    List.sort_uniq compare (Array.to_list (Array.map Mdp.action_name sol.Mdp.policy))
  in
  Alcotest.(check bool) "policy uses several actions" true (List.length used >= 3);
  Alcotest.(check string) "calm/fresh holds" "hold"
    (Mdp.action_name sol.Mdp.policy.(Mdp.state ~threat:0 ~stale:0));
  let optimal = Mdp.optimal_lifetime m and static = Mdp.static_lifetime m in
  Alcotest.(check bool)
    (Printf.sprintf "optimal EL %.1f > static EL %.1f" optimal static)
    true
    (optimal > static)

let test_find_defender_names () =
  List.iter
    (fun name ->
      Alcotest.(check bool) ("finds " ^ name) true (Inject.find_defender name <> None))
    Inject.defender_names;
  Alcotest.(check bool) "unknown rejected" true (Inject.find_defender "nope" = None)

let () =
  Alcotest.run "fortress_controller"
    [
      ( "conformance",
        [
          Alcotest.test_case "static bit-identical to undefended" `Quick
            test_static_bit_identical_to_undefended;
          Alcotest.test_case "static jobs invariant" `Quick test_static_jobs_invariant;
          Alcotest.test_case "alarm-rekey jobs invariant" `Quick
            test_defended_jobs_invariant;
          Alcotest.test_case "smr static matches undefended" `Quick
            test_smr_static_matches_undefended;
        ] );
      ( "boundaries",
        [
          QCheck_alcotest.to_alcotest prop_directive_applies_only_at_boundary;
          Alcotest.test_case "staged directives merge last-wins" `Quick
            test_staged_directive_merges_last_wins;
        ] );
      ( "alarm-rekey",
        [
          Alcotest.test_case "hand-verified staleness trace" `Quick
            test_alarm_rekey_staleness_trace;
        ] );
      ( "mdp",
        [
          Alcotest.test_case "policy nontrivial, beats static" `Quick
            test_mdp_policy_nontrivial_and_beats_static;
          Alcotest.test_case "defender registry" `Quick test_find_defender_names;
        ] );
    ]
