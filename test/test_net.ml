open Fortress_net
module Engine = Fortress_sim.Engine

type msg = Ping of int | Pong of int

let setup ?latency () =
  let engine = Engine.create ~prng:(Fortress_util.Prng.create ~seed:1) () in
  let net = Network.create ?latency engine in
  (engine, net)

let register_sink net name log =
  Network.register net ~name ~handler:(fun ~src msg -> log := (src, msg) :: !log)

(* ---- Network ---- *)

let test_basic_delivery () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  match !log with
  | [ (src, Ping 1) ] -> Alcotest.(check bool) "src" true (Address.equal src a)
  | _ -> Alcotest.fail "expected one ping"

let test_latency_applied () =
  let engine, net = setup ~latency:(Latency.constant 3.0) () in
  let arrival = ref 0.0 in
  let a = register_sink net "a" (ref []) in
  let b =
    Network.register net ~name:"b" ~handler:(fun ~src:_ _ -> arrival := Engine.now engine)
  in
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "constant latency" 3.0 !arrival

let test_down_node_loses_messages () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_down net b;
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !log);
  Alcotest.(check int) "counted dropped" 1 (Network.dropped net)

let test_crash_voids_in_flight () =
  let engine, net = setup ~latency:(Latency.constant 5.0) () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.send net ~src:a ~dst:b (Ping 1);
  (* crash while the message is in flight, then recover before delivery *)
  ignore
    (Engine.schedule engine ~delay:1.0 (fun () ->
         Network.set_down net b;
         Network.set_up net b));
  Engine.run engine;
  Alcotest.(check int) "in-flight message died with the crash" 0 (List.length !log)

let test_recovery_receives_again () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_down net b;
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Network.set_up net b;
  Network.send net ~src:a ~dst:b (Ping 2);
  Engine.run engine;
  (match !log with
  | [ (_, Ping 2) ] -> ()
  | _ -> Alcotest.fail "expected only the post-recovery ping");
  Alcotest.(check bool) "up again" true (Network.is_up net b)

let test_partition_and_heal () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.partition net a b;
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "partitioned" 0 (List.length !log);
  Network.heal net a b;
  Network.send net ~src:a ~dst:b (Ping 2);
  Engine.run engine;
  Alcotest.(check int) "healed" 1 (List.length !log)

let test_partition_symmetric () =
  let engine, net = setup () in
  let la = ref [] and lb = ref [] in
  let a = register_sink net "a" la in
  let b = register_sink net "b" lb in
  Network.partition net b a;
  Network.send net ~src:a ~dst:b (Ping 1);
  Network.send net ~src:b ~dst:a (Pong 1);
  Engine.run engine;
  Alcotest.(check int) "a->b blocked" 0 (List.length !lb);
  Alcotest.(check int) "b->a blocked" 0 (List.length !la)

let test_multicast () =
  let engine, net = setup () in
  let lb = ref [] and lc = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" lb in
  let c = register_sink net "c" lc in
  Network.multicast net ~src:a ~dsts:[ b; c ] (Ping 7);
  Engine.run engine;
  Alcotest.(check int) "b got it" 1 (List.length !lb);
  Alcotest.(check int) "c got it" 1 (List.length !lc);
  Alcotest.(check int) "delivered count" 2 (Network.delivered net)

let test_lossy_link () =
  let engine, net = setup ~latency:(Latency.lossy (Latency.constant 1.0) ~drop:0.5) () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  for _ = 1 to 1000 do
    Network.send net ~src:a ~dst:b (Ping 0)
  done;
  Engine.run engine;
  let got = List.length !log in
  Alcotest.(check bool) "roughly half lost" true (got > 400 && got < 600)

let test_per_link_latency () =
  let engine, net = setup ~latency:(Latency.constant 1.0) () in
  let t_b = ref 0.0 and t_c = ref 0.0 in
  let a = register_sink net "a" (ref []) in
  let b = Network.register net ~name:"b" ~handler:(fun ~src:_ _ -> t_b := Engine.now engine) in
  let c = Network.register net ~name:"c" ~handler:(fun ~src:_ _ -> t_c := Engine.now engine) in
  Network.set_link_latency net a c (Latency.constant 10.0);
  Network.send net ~src:a ~dst:b (Ping 0);
  Network.send net ~src:a ~dst:c (Ping 0);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "default link" 1.0 !t_b;
  Alcotest.(check (float 1e-9)) "overridden link" 10.0 !t_c

let test_unknown_destination () =
  let _, net = setup () in
  let a = register_sink net "a" (ref []) in
  Alcotest.check_raises "unknown dst" (Invalid_argument "Network: unknown address n99")
    (fun () -> Network.send net ~src:a ~dst:(Address.make 99) (Ping 0))

let test_set_handler_swap () =
  let engine, net = setup () in
  let first = ref 0 and second = ref 0 in
  let a = register_sink net "a" (ref []) in
  let b = Network.register net ~name:"b" ~handler:(fun ~src:_ _ -> incr first) in
  Network.send net ~src:a ~dst:b (Ping 0);
  Engine.run engine;
  Network.set_handler net b (fun ~src:_ _ -> incr second);
  Network.send net ~src:a ~dst:b (Ping 0);
  Engine.run engine;
  Alcotest.(check int) "old handler once" 1 !first;
  Alcotest.(check int) "new handler once" 1 !second

let test_node_listing () =
  let _, net = setup () in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" (ref []) in
  Alcotest.(check int) "two nodes" 2 (List.length (Network.nodes net));
  Alcotest.(check string) "names" "a" (Network.name net a);
  Alcotest.(check string) "names" "b" (Network.name net b)

let test_address_collections () =
  let a = Address.make 1 and b = Address.make 2 in
  let set = Address.Set.of_list [ a; b; a ] in
  Alcotest.(check int) "set dedups" 2 (Address.Set.cardinal set);
  let map = Address.Map.(empty |> add a "one" |> add b "two") in
  Alcotest.(check (option string)) "map lookup" (Some "one") (Address.Map.find_opt a map);
  Alcotest.(check string) "printable" "n1" (Address.to_string a)

let test_latency_sampling () =
  let prng = Fortress_util.Prng.create ~seed:3 in
  (* constant link: exact delay, never dropped *)
  for _ = 1 to 100 do
    match Latency.sample (Latency.constant 2.5) prng with
    | Some d -> Alcotest.(check (float 1e-12)) "constant" 2.5 d
    | None -> Alcotest.fail "constant link must not drop"
  done;
  (* jittered link: delay in [base, base + jitter) *)
  let jittered = { Latency.base = 1.0; jitter = 0.5; drop = 0.0 } in
  for _ = 1 to 1000 do
    match Latency.sample jittered prng with
    | Some d -> Alcotest.(check bool) "within jitter band" true (d >= 1.0 && d < 1.5)
    | None -> Alcotest.fail "lossless link must not drop"
  done;
  (* fully lossy link: always dropped *)
  let black_hole = Latency.lossy (Latency.constant 1.0) ~drop:1.0 in
  Alcotest.(check bool) "always dropped" true (Latency.sample black_hole prng = None)

(* ---- fault-injection interceptor points ---- *)

let ping_value = function Ping i -> i | Pong i -> i

let test_zero_latency_ordering () =
  let engine, net = setup ~latency:(Latency.constant 0.0) () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  for i = 1 to 8 do
    Network.send net ~src:a ~dst:b (Ping i)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "fifo at equal timestamps" [ 1; 2; 3; 4; 5; 6; 7; 8 ]
    (List.rev_map (fun (_, m) -> ping_value m) !log)

let test_interceptor_pass_transparent () =
  let engine, net = setup ~latency:(Latency.constant 2.0) () in
  let arrival = ref nan in
  let a = register_sink net "a" (ref []) in
  let b =
    Network.register net ~name:"b" ~handler:(fun ~src:_ _ -> arrival := Engine.now engine)
  in
  Network.set_interceptor net (Some (fun ~src:_ ~dst:_ _ -> Network.Pass));
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check (float 1e-9)) "same latency as no interceptor" 2.0 !arrival;
  Alcotest.(check int) "delivered once" 1 (Network.delivered net)

let test_interceptor_drop_counted () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_interceptor net (Some (fun ~src:_ ~dst:_ _ -> Network.Drop "fault:drop"));
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !log);
  Alcotest.(check int) "counted as dropped" 1 (Network.dropped net)

let test_duplicate_then_drop () =
  let engine, net = setup ~latency:(Latency.constant 1.0) () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  let n = ref 0 in
  Network.set_interceptor net
    (Some
       (fun ~src:_ ~dst:_ _ ->
         incr n;
         if !n = 1 then
           Network.Deliver
             [
               { Network.extra_delay = 0.0; corrupt = false };
               { Network.extra_delay = 1.0; corrupt = false };
             ]
         else Network.Drop "fault:drop"));
  Network.send net ~src:a ~dst:b (Ping 1);
  Network.send net ~src:a ~dst:b (Ping 2);
  Engine.run engine;
  Alcotest.(check (list int)) "first duplicated, second lost" [ 1; 1 ]
    (List.rev_map (fun (_, m) -> ping_value m) !log);
  Alcotest.(check int) "two deliveries" 2 (Network.delivered net);
  Alcotest.(check int) "one drop" 1 (Network.dropped net)

let test_deliver_to_crashed_is_void () =
  let engine, net = setup ~latency:(Latency.constant 1.0) () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_interceptor net
    (Some
       (fun ~src:_ ~dst:_ _ ->
         Network.Deliver [ { Network.extra_delay = 5.0; corrupt = false } ]));
  Network.send net ~src:a ~dst:b (Ping 1);
  ignore (Engine.schedule engine ~delay:2.0 (fun () -> Network.set_down net b));
  Engine.run engine;
  Alcotest.(check int) "held-back delivery voided by the crash" 0 (List.length !log);
  Alcotest.(check int) "counted as dropped" 1 (Network.dropped net)

let test_corrupt_without_corrupter_drops () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_interceptor net
    (Some
       (fun ~src:_ ~dst:_ _ ->
         Network.Deliver [ { Network.extra_delay = 0.0; corrupt = true } ]));
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "mangled frame lost" 0 (List.length !log);
  Alcotest.(check int) "counted as dropped" 1 (Network.dropped net)

let test_corrupter_applied () =
  let engine, net = setup () in
  let log = ref [] in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_interceptor net
    (Some
       (fun ~src:_ ~dst:_ _ ->
         Network.Deliver [ { Network.extra_delay = 0.0; corrupt = true } ]));
  Network.set_corrupter net (Some (function Ping i -> Some (Ping (i + 100)) | Pong _ -> None));
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check (list int)) "payload mangled in flight" [ 101 ]
    (List.rev_map (fun (_, m) -> ping_value m) !log)

let test_partition_beats_interceptor_then_heals () =
  let engine, net = setup () in
  let log = ref [] in
  let consulted = ref 0 in
  let a = register_sink net "a" (ref []) in
  let b = register_sink net "b" log in
  Network.set_interceptor net
    (Some
       (fun ~src:_ ~dst:_ _ ->
         incr consulted;
         Network.Pass));
  Network.partition net a b;
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "partition drop precedes the interceptor" 0 !consulted;
  Network.heal_all net;
  Network.send net ~src:a ~dst:b (Ping 2);
  Engine.run engine;
  Alcotest.(check (list int)) "delivered after heal" [ 2 ]
    (List.rev_map (fun (_, m) -> ping_value m) !log);
  Alcotest.(check int) "interceptor back in the path" 1 !consulted

let test_unknown_source () =
  let _, net = setup () in
  let a = register_sink net "a" (ref []) in
  Alcotest.check_raises "unknown src" (Invalid_argument "Network: unknown address n42")
    (fun () -> Network.send net ~src:(Address.make 42) ~dst:a (Ping 0))

(* ---- Conn: the crash-observation channel ---- *)

let test_conn_roundtrip () =
  let engine = Engine.create () in
  let server_got = ref [] and client_got = ref [] in
  let conn =
    Conn.establish engine ~latency:1.0
      ~on_server_receive:(fun c payload ->
        server_got := payload :: !server_got;
        Conn.server_send c ("echo:" ^ payload))
      ~on_client_receive:(fun _ payload -> client_got := payload :: !client_got)
      ~on_client_close:(fun () -> ())
  in
  Conn.client_send conn "hello";
  Engine.run engine;
  Alcotest.(check (list string)) "server" [ "hello" ] !server_got;
  Alcotest.(check (list string)) "client" [ "echo:hello" ] !client_got

let test_conn_close_observed () =
  let engine = Engine.create () in
  let observed_at = ref nan in
  let conn =
    Conn.establish engine ~latency:2.0
      ~on_server_receive:(fun c _ -> Conn.close_server c)
      ~on_client_receive:(fun _ _ -> ())
      ~on_client_close:(fun () -> observed_at := Engine.now engine)
  in
  Conn.client_send conn "probe";
  Engine.run engine;
  (* send takes 2.0, close notification another 2.0 *)
  Alcotest.(check (float 1e-9)) "client observes crash after latency" 4.0 !observed_at;
  Alcotest.(check bool) "closed" false (Conn.is_open conn)

let test_conn_messages_lost_after_close () =
  let engine = Engine.create () in
  let server_got = ref 0 in
  let conn =
    Conn.establish engine ~latency:1.0
      ~on_server_receive:(fun _ _ -> incr server_got)
      ~on_client_receive:(fun _ _ -> ())
      ~on_client_close:(fun () -> ())
  in
  Conn.client_send conn "one";
  Conn.close_server conn;
  Conn.client_send conn "two";
  Engine.run engine;
  Alcotest.(check int) "nothing delivered after close" 0 !server_got

let test_conn_close_idempotent () =
  let engine = Engine.create () in
  let closes = ref 0 in
  let conn =
    Conn.establish engine
      ~on_server_receive:(fun _ _ -> ())
      ~on_client_receive:(fun _ _ -> ())
      ~on_client_close:(fun () -> incr closes)
  in
  Conn.close_server conn;
  Conn.close_server conn;
  Engine.run engine;
  Alcotest.(check int) "one notification" 1 !closes

let test_conn_client_close_notifies_server () =
  let engine = Engine.create () in
  let server_saw_close = ref false in
  let conn =
    Conn.establish engine
      ~on_server_receive:(fun _ _ -> ())
      ~on_client_receive:(fun _ _ -> ())
      ~on_client_close:(fun () -> ())
      ~on_server_close:(fun () -> server_saw_close := true)
  in
  Conn.close_client conn;
  Engine.run engine;
  Alcotest.(check bool) "server notified" true !server_saw_close

(* ---- causal message spans ---- *)

let collect_spans engine =
  let spans = ref [] in
  ignore
    (Fortress_obs.Sink.attach (Engine.sink engine) (fun ~time:_ ev ->
         match ev with
         | Fortress_obs.Event.Span_finished { id; name; parent; attrs; _ } ->
             spans := (id, name, parent, attrs) :: !spans
         | _ -> ()));
  spans

let test_causal_send_deliver_parentage () =
  let engine, net = setup ~latency:(Latency.constant 2.0) () in
  let spans = collect_spans engine in
  let c = Engine.attach_causal ~trace_id:5 engine in
  let a = register_sink net "alpha" (ref []) in
  let log = ref [] in
  let b = register_sink net "beta" log in
  let root = Fortress_obs.Causal.span_of c "client.request" in
  Fortress_obs.Causal.with_ambient c root (fun () ->
      Network.send net ~src:a ~dst:b (Ping 1));
  Engine.run engine;
  Fortress_obs.Causal.finish c root;
  Alcotest.(check int) "message delivered" 1 (List.length !log);
  let find name =
    match List.find_opt (fun (_, n, _, _) -> n = name) !spans with
    | Some s -> s
    | None -> Alcotest.failf "no %s span" name
  in
  let send_id, _, send_parent, send_attrs = find "net.send" in
  let _, _, deliver_parent, deliver_attrs = find "net.deliver" in
  let root_id, _, _, _ = find "client.request" in
  Alcotest.(check (option int)) "send parents to the ambient request" (Some root_id)
    send_parent;
  Alcotest.(check (option int)) "deliver parents to its send" (Some send_id) deliver_parent;
  Alcotest.(check bool) "ids in the trace-id block" true
    (send_id > 5 * Fortress_obs.Causal.id_stride);
  Alcotest.(check (option string)) "send carries src node" (Some "alpha")
    (List.assoc_opt "node" send_attrs);
  Alcotest.(check (option string)) "send carries dst node" (Some "beta")
    (List.assoc_opt "dst" send_attrs);
  Alcotest.(check (option string)) "deliver carries dst node" (Some "beta")
    (List.assoc_opt "node" deliver_attrs)

let test_causal_nested_sends_chain () =
  (* beta's handler sends onward to gamma while the deliver span is
     ambient, so gamma's send parents to beta's deliver: one causal tree
     across three nodes *)
  let engine, net = setup ~latency:(Latency.constant 1.0) () in
  let spans = collect_spans engine in
  ignore (Engine.attach_causal engine);
  let a = register_sink net "alpha" (ref []) in
  let glog = ref [] in
  let g = register_sink net "gamma" glog in
  let b = ref a in
  b :=
    Network.register net ~name:"beta" ~handler:(fun ~src:_ _ ->
        Network.send net ~src:!b ~dst:g (Pong 2));
  Network.send net ~src:a ~dst:!b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "relayed" 1 (List.length !glog);
  let deliver_ids =
    List.filter_map (fun (id, n, _, _) -> if n = "net.deliver" then Some id else None) !spans
  in
  let second_send_parent =
    (* the later send (higher id) is beta->gamma *)
    List.filter_map (fun (id, n, p, _) -> if n = "net.send" then Some (id, p) else None) !spans
    |> List.sort compare |> List.rev |> List.hd |> snd
  in
  Alcotest.(check bool) "relay send parents to a deliver span" true
    (match second_send_parent with Some p -> List.mem p deliver_ids | None -> false)

let test_no_spans_without_causal () =
  let engine, net = setup ~latency:(Latency.constant 2.0) () in
  let spans = collect_spans engine in
  let a = register_sink net "alpha" (ref []) in
  let log = ref [] in
  let b = register_sink net "beta" log in
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check int) "delivered" 1 (List.length !log);
  Alcotest.(check int) "zero spans off the causal path" 0 (List.length !spans)

let test_causal_lost_message_no_deliver_span () =
  let engine, net = setup ~latency:(Latency.lossy (Latency.constant 1.0) ~drop:1.0) () in
  let spans = collect_spans engine in
  ignore (Engine.attach_causal engine);
  let a = register_sink net "alpha" (ref []) in
  let b = register_sink net "beta" (ref []) in
  Network.send net ~src:a ~dst:b (Ping 1);
  Engine.run engine;
  Alcotest.(check bool) "no deliver span for a lost message" true
    (not (List.exists (fun (_, n, _, _) -> n = "net.deliver") !spans))

let () =
  Alcotest.run "fortress_net"
    [
      ( "network",
        [
          Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
          Alcotest.test_case "latency" `Quick test_latency_applied;
          Alcotest.test_case "down node" `Quick test_down_node_loses_messages;
          Alcotest.test_case "crash voids in-flight" `Quick test_crash_voids_in_flight;
          Alcotest.test_case "recovery" `Quick test_recovery_receives_again;
          Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
          Alcotest.test_case "partition symmetric" `Quick test_partition_symmetric;
          Alcotest.test_case "multicast" `Quick test_multicast;
          Alcotest.test_case "lossy link" `Quick test_lossy_link;
          Alcotest.test_case "per-link latency" `Quick test_per_link_latency;
          Alcotest.test_case "unknown destination" `Quick test_unknown_destination;
          Alcotest.test_case "handler swap" `Quick test_set_handler_swap;
          Alcotest.test_case "node listing" `Quick test_node_listing;
          Alcotest.test_case "address collections" `Quick test_address_collections;
          Alcotest.test_case "latency sampling" `Quick test_latency_sampling;
        ] );
      ( "interceptor",
        [
          Alcotest.test_case "zero-latency ordering" `Quick test_zero_latency_ordering;
          Alcotest.test_case "pass is transparent" `Quick test_interceptor_pass_transparent;
          Alcotest.test_case "drop counted" `Quick test_interceptor_drop_counted;
          Alcotest.test_case "duplicate then drop" `Quick test_duplicate_then_drop;
          Alcotest.test_case "delivery to crashed node voided" `Quick
            test_deliver_to_crashed_is_void;
          Alcotest.test_case "corrupt without corrupter drops" `Quick
            test_corrupt_without_corrupter_drops;
          Alcotest.test_case "corrupter applied" `Quick test_corrupter_applied;
          Alcotest.test_case "partition precedes interceptor, heal re-delivers" `Quick
            test_partition_beats_interceptor_then_heals;
          Alcotest.test_case "unknown source" `Quick test_unknown_source;
        ] );
      ( "causal",
        [
          Alcotest.test_case "send/deliver parentage" `Quick
            test_causal_send_deliver_parentage;
          Alcotest.test_case "nested sends chain across nodes" `Quick
            test_causal_nested_sends_chain;
          Alcotest.test_case "no spans without causal" `Quick test_no_spans_without_causal;
          Alcotest.test_case "lost message, no deliver span" `Quick
            test_causal_lost_message_no_deliver_span;
        ] );
      ( "conn",
        [
          Alcotest.test_case "round-trip" `Quick test_conn_roundtrip;
          Alcotest.test_case "crash observation" `Quick test_conn_close_observed;
          Alcotest.test_case "loss after close" `Quick test_conn_messages_lost_after_close;
          Alcotest.test_case "idempotent close" `Quick test_conn_close_idempotent;
          Alcotest.test_case "client close notifies server" `Quick
            test_conn_client_close_notifies_server;
        ] );
    ]
