(* The parallel-execution contract: partitioning is a pure function of
   (jobs, n), per-trial PRNG streams are a pure function of the trial
   index, and everything a run reports — statistics, events, convergence
   checkpoints, trace digests — is bit-identical at every job count. *)

open Fortress_par
module Prng = Fortress_util.Prng
module Stats = Fortress_util.Stats
module Trial = Fortress_mc.Trial
module Step_level = Fortress_mc.Step_level
module Systems = Fortress_model.Systems
module Convergence = Fortress_prof.Convergence
module Sink = Fortress_obs.Sink
module Inject = Fortress_exp.Inject
module Plan = Fortress_faults.Plan

let check_float = Alcotest.(check (float 0.0))

(* ---- Partition ---- *)

let test_partition_shapes () =
  Alcotest.(check (array (pair int int)))
    "10 over 3" [| (0, 4); (4, 7); (7, 10) |] (Partition.chunks ~jobs:3 ~n:10 ());
  Alcotest.(check (array (pair int int)))
    "more jobs than work" [| (0, 1); (1, 2) |] (Partition.chunks ~jobs:5 ~n:2 ());
  Alcotest.(check (array (pair int int)))
    "jobs <= 1 is one chunk" [| (0, 7) |] (Partition.chunks ~jobs:0 ~n:7 ());
  Alcotest.(check (array (pair int int)))
    "empty range" [||] (Partition.chunks ~jobs:4 ~n:0 ());
  Alcotest.(check (array (pair int int)))
    "min_chunk floors the chunk count" [| (0, 5); (5, 10) |]
    (Partition.chunks ~min_chunk:4 ~jobs:8 ~n:10 ());
  Alcotest.(check (array (pair int int)))
    "min_chunk above n leaves one chunk" [| (0, 3) |]
    (Partition.chunks ~min_chunk:16 ~jobs:8 ~n:3 ());
  Alcotest.check_raises "negative n"
    (Invalid_argument "Partition.chunks: n must be non-negative") (fun () ->
      ignore (Partition.chunks ~jobs:2 ~n:(-1) ()))

let test_chunk_of_bounds () =
  Alcotest.check_raises "index past n"
    (Invalid_argument "Partition.chunk_of: index out of range") (fun () ->
      ignore (Partition.chunk_of ~jobs:2 ~n:5 5))

(* ---- Exec ---- *)

let test_map_indices_is_array_init () =
  let f i = (i * i) + 3 in
  let expected = Array.init 23 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expected
        (Exec.map_indices ~jobs ~n:23 f))
    [ 1; 2; 3; 4; 7; 32 ]

let test_map_chunks_propagates_first_failure () =
  Alcotest.check_raises "lowest failing chunk wins" (Failure "chunk 1") (fun () ->
      ignore
        (Exec.map_chunks ~jobs:4 ~n:8 (fun ~chunk ~lo:_ ~hi:_ ->
             if chunk >= 1 then failwith (Printf.sprintf "chunk %d" chunk) else chunk)))

(* Forcing the active-domain limit above this machine's core count makes
   the multi-lane pool path run even on a single-core CI box; results are
   unaffected by construction, which is exactly what these tests pin. *)
let with_forced_lanes n f =
  Exec.set_max_active_domains (Some n);
  Fun.protect ~finally:(fun () -> Exec.set_max_active_domains None) f

let test_pool_usable_after_chunk_failure () =
  with_forced_lanes 4 (fun () ->
      Alcotest.check_raises "worker-chunk failure, lowest chunk wins" (Failure "chunk 1")
        (fun () ->
          ignore
            (Exec.map_chunks ~jobs:4 ~n:8 (fun ~chunk ~lo:_ ~hi:_ ->
                 if chunk >= 1 then failwith (Printf.sprintf "chunk %d" chunk) else chunk)));
      let f i = (i * 31) - 4 in
      Alcotest.(check (array int))
        "pool still serves work after the failure"
        (Array.init 23 f)
        (Exec.map_indices ~jobs:4 ~n:23 f))

(* ---- Trial determinism across job counts ---- *)

let geometric_sampler prng =
  let l = Prng.geometric prng ~p:0.02 in
  if l > 200 then None else Some l

let run_with_events ~jobs =
  let sink = Sink.create () in
  let mem, read = Sink.memory () in
  ignore (Sink.attach sink mem);
  let monitor = Convergence.create ~batch:10 ~target_rel:0.05 () in
  let res =
    Trial.run ~sink ~monitor ~jobs ~trials:97 ~seed:31 ~sampler:geometric_sampler ()
  in
  (res, read (), monitor)

(* ---- Pool lifecycle ---- *)

let test_pool_reuse_across_job_counts () =
  with_forced_lanes 4 (fun () ->
      let pool = Pool.global () in
      let run jobs = Trial.run ~jobs ~trials:50 ~seed:9 ~sampler:geometric_sampler () in
      let r3 = run 3 in
      let after3 = Pool.workers pool in
      Alcotest.(check bool) "jobs=3 spawned workers" true (after3 >= 2);
      let r4 = run 4 in
      let after4 = Pool.workers pool in
      Alcotest.(check bool) "jobs=4 grew the same pool" true (after4 >= 3);
      let r2 = run 2 in
      Alcotest.(check int) "smaller run never shrinks the pool" after4 (Pool.workers pool);
      Alcotest.(check (array (float 0.0))) "jobs 3 = jobs 4" r3.Trial.lifetimes r4.Trial.lifetimes;
      Alcotest.(check (array (float 0.0))) "jobs 4 = jobs 2" r4.Trial.lifetimes r2.Trial.lifetimes)

let test_pool_jobs_invariant_forced_workers () =
  with_forced_lanes 4 (fun () ->
      let r1, ev1, _ = run_with_events ~jobs:1 in
      let r4, ev4, _ = run_with_events ~jobs:4 in
      Alcotest.(check (array (float 0.0))) "lifetimes" r1.Trial.lifetimes r4.Trial.lifetimes;
      Alcotest.(check bool) "event streams identical" true (ev1 = ev4);
      let module Timeline = Fortress_obs.Timeline in
      let inject jobs =
        Inject.run_plan
          { Inject.default_config with trials = 6; jobs; telemetry = Some 100.0 }
          Plan.chaos
      in
      let i1 = inject 1 and i4 = inject 4 in
      Alcotest.(check string) "inject digest" i1.Inject.digest i4.Inject.digest;
      check_float "inject mean EL" i1.Inject.el.Trial.mean i4.Inject.el.Trial.mean;
      match (i1.Inject.telemetry, i4.Inject.telemetry) with
      | Some (tl1, _), Some (tl4, _) ->
          Alcotest.(check bool) "timeline windows identical" true
            (Timeline.windows tl1 = Timeline.windows tl4)
      | _ -> Alcotest.fail "telemetry missing from a run that requested it")

let test_trial_jobs_invariant () =
  let r1, ev1, m1 = run_with_events ~jobs:1 in
  let r4, ev4, m4 = run_with_events ~jobs:4 in
  Alcotest.(check (array (float 0.0))) "lifetimes" r1.Trial.lifetimes r4.Trial.lifetimes;
  Alcotest.(check int) "censored" r1.Trial.censored r4.Trial.censored;
  Alcotest.(check int) "trials" r1.Trial.trials r4.Trial.trials;
  check_float "mean" r1.Trial.mean r4.Trial.mean;
  check_float "median" r1.Trial.median r4.Trial.median;
  check_float "ci lo" (fst r1.Trial.ci95) (fst r4.Trial.ci95);
  check_float "ci hi" (snd r1.Trial.ci95) (snd r4.Trial.ci95);
  Alcotest.(check bool) "event streams identical" true (ev1 = ev4);
  Alcotest.(check bool)
    "convergence checkpoints identical" true
    (Convergence.checkpoints m1 = Convergence.checkpoints m4)

let test_trial_early_stop_jobs_invariant () =
  let run jobs =
    let monitor = Convergence.create ~batch:10 ~target_rel:0.5 () in
    let res =
      Trial.run ~monitor ~early_stop:true ~jobs ~trials:400 ~seed:5
        ~sampler:geometric_sampler ()
    in
    (res, Convergence.checkpoints monitor)
  in
  let r1, c1 = run 1 and r4, c4 = run 4 in
  Alcotest.(check bool) "stopped before the budget" true (r1.Trial.trials < 400);
  Alcotest.(check int) "same stopping point" r1.Trial.trials r4.Trial.trials;
  Alcotest.(check (array (float 0.0))) "lifetimes" r1.Trial.lifetimes r4.Trial.lifetimes;
  Alcotest.(check bool) "checkpoints identical" true (c1 = c4)

let test_step_level_jobs_invariant () =
  let cfg = { Step_level.default with alpha = 3e-3 } in
  let r1 = Step_level.estimate ~jobs:1 ~trials:500 ~seed:42 Systems.S2_PO cfg in
  let r4 = Step_level.estimate ~jobs:4 ~trials:500 ~seed:42 Systems.S2_PO cfg in
  Alcotest.(check (array (float 0.0))) "lifetimes" r1.Trial.lifetimes r4.Trial.lifetimes;
  check_float "mean" r1.Trial.mean r4.Trial.mean

(* ---- Inject digests across job counts ---- *)

let test_inject_jobs_invariant () =
  let run jobs =
    Inject.run_plan { Inject.default_config with trials = 6; jobs } Plan.chaos
  in
  let r1 = run 1 and r4 = run 4 in
  Alcotest.(check string) "digest" r1.Inject.digest r4.Inject.digest;
  check_float "mean EL" r1.Inject.el.Trial.mean r4.Inject.el.Trial.mean;
  Alcotest.(check (option (float 1e-9)))
    "availability" r1.Inject.availability r4.Inject.availability;
  Alcotest.(check int) "issued" r1.Inject.requests_issued r4.Inject.requests_issued;
  Alcotest.(check bool) "fault stats" true (r1.Inject.faults = r4.Inject.faults)

let test_inject_timeline_jobs_invariant () =
  (* the pooled telemetry plane is built by replaying per-trial buffers at
     the join in trial-index order, so windows, signal series and alarms
     must be identical at any job count — and turning it on must not move
     the trace digest *)
  let module Timeline = Fortress_obs.Timeline in
  let module Signal = Fortress_obs.Signal in
  let run jobs telemetry =
    Inject.run_plan { Inject.default_config with trials = 6; jobs; telemetry } Plan.chaos
  in
  let r1 = run 1 (Some 100.0) and r4 = run 4 (Some 100.0) in
  Alcotest.(check string) "digest" r1.Inject.digest r4.Inject.digest;
  Alcotest.(check string) "telemetry leaves the digest alone"
    (run 1 None).Inject.digest r1.Inject.digest;
  match (r1.Inject.telemetry, r4.Inject.telemetry) with
  | Some (tl1, sg1), Some (tl4, sg4) ->
      Alcotest.(check int) "events pooled" (Timeline.events_seen tl1)
        (Timeline.events_seen tl4);
      Alcotest.(check bool) "windows identical" true
        (Timeline.windows tl1 = Timeline.windows tl4);
      Alcotest.(check bool) "totals identical" true
        (Timeline.totals tl1 = Timeline.totals tl4);
      List.iter
        (fun kind ->
          Alcotest.(check bool)
            (Signal.kind_name kind ^ " series identical")
            true
            (Signal.series sg1 kind = Signal.series sg4 kind))
        Signal.all;
      Alcotest.(check bool) "alarms identical" true (Signal.alarms sg1 = Signal.alarms sg4)
  | _ -> Alcotest.fail "telemetry missing from a run that requested it"

(* ---- Convergence.merge ---- *)

let test_convergence_merge_equals_sequential () =
  let outcomes =
    List.init 60 (fun i -> if i mod 7 = 0 then None else Some (float_of_int ((i * 13 mod 50) + 1)))
  in
  let feed monitor xs = List.iter (fun x -> ignore (Convergence.observe monitor x)) xs in
  let whole = Convergence.create ~batch:10 () in
  feed whole outcomes;
  let a = Convergence.create ~batch:10 () and b = Convergence.create ~batch:10 () in
  let rec split i = function
    | [] -> ([], [])
    | x :: rest ->
        let l, r = split (i + 1) rest in
        if i < 25 then (x :: l, r) else (l, x :: r)
  in
  let xs, ys = split 0 outcomes in
  feed a xs;
  feed b ys;
  let m = Convergence.merge a b in
  Alcotest.(check int) "total" (Convergence.total whole) (Convergence.total m);
  Alcotest.(check int) "censored" (Convergence.censored whole) (Convergence.censored m);
  Alcotest.(check (float 1e-12)) "mean" (Convergence.mean whole) (Convergence.mean m);
  Alcotest.(check (float 1e-12))
    "half width" (Convergence.half_width whole) (Convergence.half_width m);
  Alcotest.(check bool)
    "converged agrees" (Convergence.converged whole) (Convergence.converged m);
  (* a's checkpoints are prefixes of the merged stream and survive *)
  let prefix l n = List.filteri (fun i _ -> i < n) l in
  let ca = Convergence.checkpoints a in
  Alcotest.(check bool)
    "a's checkpoints kept" true
    (prefix (Convergence.checkpoints m) (List.length ca) = ca);
  Alcotest.check_raises "mismatched batch"
    (Invalid_argument "Convergence.merge: monitors configured differently") (fun () ->
      ignore (Convergence.merge (Convergence.create ~batch:10 ()) (Convergence.create ~batch:25 ())))

(* ---- qcheck properties ---- *)

let prop_split_nth_matches_sequential =
  QCheck.Test.make ~name:"split_nth n = n-th sequential split" ~count:200
    QCheck.(pair small_int (int_bound 30))
    (fun (seed, n) ->
      QCheck.assume (n > 0);
      let sequential = Prng.create ~seed in
      let root = Prng.create ~seed in
      List.for_all
        (fun i ->
          let from_seq = Prng.split sequential in
          let from_nth = Prng.split_nth root i in
          List.init 4 (fun _ -> Prng.bits64 from_seq)
          = List.init 4 (fun _ -> Prng.bits64 from_nth))
        (List.init n (fun i -> i + 1)))

let prop_streams_independent_of_partition =
  (* the words trial i draws do not depend on which chunk ran it *)
  QCheck.Test.make ~name:"per-index streams independent of jobs" ~count:100
    QCheck.(triple small_int (int_range 1 40) (int_range 1 8))
    (fun (seed, n, jobs) ->
      let draw ~jobs =
        Exec.map_indices ~jobs ~n (fun i ->
            let prng = Prng.split_nth (Prng.create ~seed) (i + 1) in
            List.init 3 (fun _ -> Prng.bits64 prng))
      in
      draw ~jobs:1 = draw ~jobs)

let prop_chunks_partition_the_range =
  QCheck.Test.make ~name:"chunks cover [0,n) disjointly, balanced" ~count:500
    QCheck.(pair (int_range 0 200) (int_range 1 32))
    (fun (n, jobs) ->
      let chunks = Partition.chunks ~jobs ~n () in
      let covered = Array.to_list chunks |> List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun k -> lo + k)) in
      let sizes = Array.to_list chunks |> List.map (fun (lo, hi) -> hi - lo) in
      let contiguous =
        Array.to_list chunks
        |> List.for_all (fun (lo, hi) -> lo < hi)
      in
      covered = List.init n Fun.id
      && contiguous
      && (sizes = []
         || List.fold_left max 0 sizes - List.fold_left min max_int sizes <= 1))

let prop_chunk_of_agrees_with_chunks =
  QCheck.Test.make ~name:"chunk_of is the index of the owning chunk" ~count:500
    QCheck.(pair (int_range 1 120) (int_range 1 16))
    (fun (n, jobs) ->
      let chunks = Partition.chunks ~jobs ~n () in
      List.for_all
        (fun i ->
          let c = Partition.chunk_of ~jobs ~n i in
          let lo, hi = chunks.(c) in
          lo <= i && i < hi)
        (List.init n Fun.id))

let prop_coarse_chunking_preserves_mapping =
  (* the min_chunk floor may only reduce the chunk COUNT — the resulting
     partition must be exactly the plain contiguous partition at that
     reduced count, with chunk_of in agreement, so coarsening can never
     reorder or reassign indices *)
  QCheck.Test.make ~name:"min_chunk coarsening preserves the contiguous mapping" ~count:500
    QCheck.(triple (int_range 0 200) (int_range 1 32) (int_range 1 64))
    (fun (n, jobs, min_chunk) ->
      let coarse = Partition.chunks ~min_chunk ~jobs ~n () in
      let k' = Array.length coarse in
      coarse = Partition.chunks ~jobs:k' ~n ()
      && k' <= Array.length (Partition.chunks ~jobs ~n ())
      && (k' <= 1 || Array.for_all (fun (lo, hi) -> hi - lo >= min_chunk) coarse)
      && List.for_all
           (fun i ->
             let c = Partition.chunk_of ~min_chunk ~jobs ~n i in
             let lo, hi = coarse.(c) in
             lo <= i && i < hi)
           (List.init n Fun.id))

let properties =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_split_nth_matches_sequential;
      prop_streams_independent_of_partition;
      prop_chunks_partition_the_range;
      prop_chunk_of_agrees_with_chunks;
      prop_coarse_chunking_preserves_mapping;
    ]

let () =
  Alcotest.run "fortress_par"
    [
      ( "partition",
        [
          Alcotest.test_case "chunk shapes" `Quick test_partition_shapes;
          Alcotest.test_case "chunk_of bounds" `Quick test_chunk_of_bounds;
        ] );
      ( "exec",
        [
          Alcotest.test_case "map_indices = Array.init" `Quick test_map_indices_is_array_init;
          Alcotest.test_case "first failing chunk re-raised" `Quick
            test_map_chunks_propagates_first_failure;
        ] );
      ( "pool",
        [
          Alcotest.test_case "worker failure leaves the pool usable" `Quick
            test_pool_usable_after_chunk_failure;
          Alcotest.test_case "reused across runs at different job counts" `Quick
            test_pool_reuse_across_job_counts;
          Alcotest.test_case "jobs invariance with forced multi-lane pool" `Slow
            test_pool_jobs_invariant_forced_workers;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "trial run invariant in jobs" `Quick test_trial_jobs_invariant;
          Alcotest.test_case "early stop invariant in jobs" `Quick
            test_trial_early_stop_jobs_invariant;
          Alcotest.test_case "step-level estimate invariant in jobs" `Quick
            test_step_level_jobs_invariant;
          Alcotest.test_case "inject digest invariant in jobs" `Slow
            test_inject_jobs_invariant;
          Alcotest.test_case "inject timeline invariant in jobs" `Slow
            test_inject_timeline_jobs_invariant;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "merge equals sequential accumulation" `Quick
            test_convergence_merge_equals_sequential;
        ] );
      ("properties", properties);
    ]
