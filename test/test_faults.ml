(* fortress_faults: plan validation, injector determinism, wiring of
   timeline actions into a live deployment, and the end-to-end properties
   the inject subcommand reports — trace-digest determinism and the EL
   escalation ordering of the built-in plan ladder. *)

module Engine = Fortress_sim.Engine
module Network = Fortress_net.Network
module Address = Fortress_net.Address
module Plan = Fortress_faults.Plan
module Injector = Fortress_faults.Injector
module Wiring = Fortress_faults.Wiring
module Deployment = Fortress_core.Deployment
module Obfuscation = Fortress_core.Obfuscation
module Instance = Fortress_defense.Instance
module Inject = Fortress_exp.Inject

(* ---- plans ---- *)

let test_builtins_validate () =
  List.iter Plan.validate Plan.builtins;
  Alcotest.(check int) "four hostile plans plus none" 5 (List.length Plan.builtins)

let test_find () =
  (match Plan.find "chaos" with
  | Some p -> Alcotest.(check string) "found by name" "chaos" p.Plan.name
  | None -> Alcotest.fail "chaos not found");
  Alcotest.(check bool) "unknown plan" true (Plan.find "zen" = None)

let invalid name f = Alcotest.check_raises name (Invalid_argument "probe") f

let expect_invalid name plan =
  match Plan.validate plan with
  | () -> Alcotest.fail (name ^ ": accepted")
  | exception Invalid_argument _ -> ()

let _ = invalid

let test_validation_rejects () =
  expect_invalid "drop rate above 1"
    { Plan.none with name = "bad"; link = { Plan.calm with drop = 1.5 } };
  expect_invalid "negative jitter"
    { Plan.none with name = "bad"; link = { Plan.calm with jitter = -0.1 } };
  expect_invalid "empty name" { Plan.none with name = "" };
  expect_invalid "entry in the past"
    { Plan.none with name = "bad"; timeline = [ Plan.once ~at:(-1.0) Plan.Heal_all ] };
  expect_invalid "non-positive period"
    {
      Plan.none with
      name = "bad";
      timeline = [ Plan.repeat ~at:1.0 ~every:0.0 Plan.Heal_all ];
    };
  expect_invalid "nameserver partition"
    {
      Plan.none with
      name = "bad";
      timeline = [ Plan.once ~at:1.0 (Plan.Partition (Plan.Nameserver, Plan.Server 0)) ];
    };
  expect_invalid "non-positive slowdown"
    { Plan.none with name = "bad"; timeline = [ Plan.once ~at:1.0 (Plan.Slowdown 0.0) ] }

(* ---- injector ---- *)

let verdict_repr = function
  | Network.Pass -> "pass"
  | Network.Drop r -> "drop:" ^ r
  | Network.Deliver ds ->
      String.concat ";"
        (List.map
           (fun d ->
             Printf.sprintf "%g%s" d.Network.extra_delay (if d.Network.corrupt then "!" else ""))
           ds)

let interceptor_trace ~seed n =
  let engine = Engine.create ~prng:(Fortress_util.Prng.create ~seed:0) () in
  let stats = Injector.fresh_stats () in
  let prng = Injector.derive_prng ~seed in
  let icpt = Injector.link_interceptor ~engine ~prng ~stats Plan.lossy.Plan.link in
  let a = Address.make 1 and b = Address.make 2 in
  List.init n (fun i -> verdict_repr (icpt ~src:a ~dst:b i))

let test_injector_deterministic () =
  let t1 = interceptor_trace ~seed:7 200 and t2 = interceptor_trace ~seed:7 200 in
  Alcotest.(check (list string)) "same seed, same verdicts" t1 t2;
  let t3 = interceptor_trace ~seed:8 200 in
  Alcotest.(check bool) "different seed diverges" true (t1 <> t3)

let test_injector_certain_drop () =
  let engine = Engine.create ~prng:(Fortress_util.Prng.create ~seed:0) () in
  let stats = Injector.fresh_stats () in
  let prng = Injector.derive_prng ~seed:1 in
  let icpt =
    Injector.link_interceptor ~engine ~prng ~stats { Plan.calm with drop = 1.0 }
  in
  let a = Address.make 1 and b = Address.make 2 in
  for i = 1 to 50 do
    match icpt ~src:a ~dst:b i with
    | Network.Drop _ -> ()
    | _ -> Alcotest.fail "drop = 1.0 let a message through"
  done;
  Alcotest.(check int) "stats count every drop" 50 stats.Injector.dropped;
  Alcotest.(check int) "drops are link faults" 50 (Injector.stats_total stats)

(* ---- wiring into a deployment ---- *)

let small_deployment seed =
  Deployment.create
    {
      Deployment.default_config with
      seed;
      keyspace = Fortress_defense.Keyspace.of_size 64;
    }

let test_wiring_none_is_inert () =
  let d = small_deployment 3 in
  let h = Wiring.install Plan.none ~deployment:d ~seed:3 () in
  let c = Deployment.new_client d ~name:"c0" in
  for _ = 1 to 20 do
    ignore (Fortress_core.Client.submit c ~cmd:"get x" ~on_response:(fun _ -> ()))
  done;
  Engine.run ~until:50.0 (Deployment.engine d);
  Alcotest.(check int) "no injected link faults" 0 (Injector.stats_total (Wiring.stats h));
  Wiring.uninstall h

let test_wiring_unknown_target_rejected () =
  let d = small_deployment 3 in
  let plan =
    { Plan.none with name = "bad"; timeline = [ Plan.once ~at:1.0 (Plan.Crash (Plan.Server 9)) ] }
  in
  match Wiring.install plan ~deployment:d ~seed:3 () with
  | _ -> Alcotest.fail "accepted a target outside the deployment"
  | exception Invalid_argument _ -> ()

let test_wiring_crash_restart_timeline () =
  let d = small_deployment 3 in
  let plan =
    {
      Plan.none with
      name = "flap";
      timeline =
        [ Plan.once ~at:10.0 (Plan.Crash (Plan.Server 0)); Plan.once ~at:20.0 (Plan.Restart (Plan.Server 0)) ];
    }
  in
  let h = Wiring.install plan ~deployment:d ~seed:3 () in
  let engine = Deployment.engine d in
  let net = Deployment.network d in
  let s0 = (Deployment.server_addresses d).(0) in
  Engine.run ~until:15.0 engine;
  Alcotest.(check bool) "down after the crash entry" false (Network.is_up net s0);
  Engine.run ~until:25.0 engine;
  Alcotest.(check bool) "up after the restart entry" true (Network.is_up net s0);
  Alcotest.(check int) "both actions fired" 2 (Wiring.stats h).Injector.timeline_fired;
  Wiring.uninstall h

let test_rekey_skips_down_server () =
  let d = small_deployment 3 in
  let insts = Deployment.server_instances d in
  let crashed_key = Instance.key insts.(0) in
  Deployment.crash_server d 0;
  Deployment.rekey d;
  Alcotest.(check int) "down server kept its stale key" crashed_key (Instance.key insts.(0));
  Alcotest.(check bool) "up server was rekeyed" true (Instance.key insts.(1) <> crashed_key);
  Deployment.restart_server d 0;
  Deployment.rekey d;
  Alcotest.(check int) "rejoins the shared key after restart" (Instance.key insts.(1))
    (Instance.key insts.(0))

let test_stall_skips_boundaries () =
  let d = small_deployment 3 in
  let o = Obfuscation.attach d ~mode:Obfuscation.PO ~period:10.0 in
  Obfuscation.set_stalled o true;
  Engine.run ~until:35.0 (Deployment.engine d);
  Alcotest.(check int) "no boundary completed" 0 (Obfuscation.steps_completed o);
  Alcotest.(check int) "three boundaries skipped" 3 (Obfuscation.skipped_boundaries o);
  Obfuscation.set_stalled o false;
  Engine.run ~until:45.0 (Deployment.engine d);
  Alcotest.(check int) "resumes after unwedging" 1 (Obfuscation.steps_completed o);
  Obfuscation.detach o

(* ---- end-to-end: determinism and the escalation ladder ---- *)

let quick_config = { Inject.default_config with trials = 2; max_steps = 80; seed = 5 }

let test_digest_deterministic () =
  let r1 = Inject.run_plan quick_config Plan.chaos in
  let r2 = Inject.run_plan quick_config Plan.chaos in
  Alcotest.(check string) "same seed+plan, same digest" r1.Inject.digest r2.Inject.digest;
  let r3 = Inject.run_plan { quick_config with seed = 6 } Plan.chaos in
  Alcotest.(check bool) "different seed, different digest" true
    (r1.Inject.digest <> r3.Inject.digest);
  let r4 = Inject.run_plan quick_config Plan.lossy in
  Alcotest.(check bool) "different plan, different digest" true
    (r1.Inject.digest <> r4.Inject.digest)

let test_escalation_ordering () =
  let config = { Inject.default_config with trials = 6; seed = 42 } in
  let report =
    Inject.run ~config ~plans:[ Plan.lossy; Plan.partition; Plan.crashy; Plan.chaos ] ()
  in
  Alcotest.(check bool) "EL non-increasing along the ladder" true
    (Inject.monotone_non_increasing report);
  (* link-level noise must not decorrelate the runs: with the key stream
     and the attacker stream decoupled from the network, lossy and
     partition are pathwise identical to the baseline at this operating
     point *)
  match Inject.el_means report with
  | (_, base) :: (_, lossy) :: (_, part) :: _ ->
      Alcotest.(check (float 1e-9)) "lossy ties baseline exactly" base lossy;
      Alcotest.(check (float 1e-9)) "partition ties baseline exactly" base part
  | _ -> Alcotest.fail "report shape"

(* ---- causal tracing through inject ---- *)

module Latency = Fortress_obs.Latency
module Sink = Fortress_obs.Sink

let causal_config = { quick_config with causal = true }

let run_causal ~jobs =
  let sink = Sink.create () in
  let sub, read = Sink.memory () in
  ignore (Sink.attach sink sub);
  let r = Inject.run_plan ~sink { causal_config with jobs } Plan.chaos in
  (r, read ())

let test_causal_off_digest_unchanged () =
  let plain = Inject.run_plan quick_config Plan.chaos in
  let traced = Inject.run_plan causal_config Plan.chaos in
  Alcotest.(check bool) "latency present iff causal" true
    (plain.Inject.latency = None && traced.Inject.latency <> None);
  (* causal tracing is a pure observer: the simulated world is unchanged *)
  Alcotest.(check (float 1e-9)) "EL unchanged by tracing"
    (Inject.mean_el quick_config plain) (Inject.mean_el causal_config traced)

let test_causal_jobs_invariant () =
  let r1, ev1 = run_causal ~jobs:1 in
  let r4, ev4 = run_causal ~jobs:4 in
  Alcotest.(check string) "digest identical at jobs 1 vs 4" r1.Inject.digest r4.Inject.digest;
  Alcotest.(check int) "same pooled event count" (List.length ev1) (List.length ev4);
  let lines evs = List.map (fun (t, e) -> Sink.line ~time:t e) evs in
  Alcotest.(check bool) "pooled stream byte-identical" true (lines ev1 = lines ev4);
  let canon (r : Inject.run) =
    match r.Inject.latency with
    | None -> Alcotest.fail "latency missing"
    | Some l -> List.map (fun k -> (Latency.chains l k, Latency.censored l k)) Latency.kinds
  in
  Alcotest.(check bool) "latency chains identical" true (canon r1 = canon r4)

let test_causal_stream_carries_spans_and_chains () =
  let r, events = run_causal ~jobs:1 in
  let count name =
    List.length
      (List.filter
         (fun (_, ev) ->
           match ev with
           | Fortress_obs.Event.Span_finished { name = n; _ } -> n = name
           | _ -> false)
         events)
  in
  Alcotest.(check bool) "net.send spans present" true (count "net.send" > 0);
  Alcotest.(check bool) "net.deliver spans present" true (count "net.deliver" > 0);
  Alcotest.(check bool) "client.request spans present" true (count "client.request" > 0);
  match r.Inject.latency with
  | None -> Alcotest.fail "latency missing"
  | Some l ->
      (* chaos stalls the rekeyer and crashes servers: detection chains
         must open (closed or censored) *)
      Alcotest.(check bool) "detection chains observed" true
        (Latency.total l + Latency.censored l Latency.Detection > 0);
      Alcotest.(check bool) "latency table renders" true
        (Inject.latency_table r <> None)

let () =
  Alcotest.run "fortress_faults"
    [
      ( "plan",
        [
          Alcotest.test_case "builtins validate" `Quick test_builtins_validate;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "validation rejects" `Quick test_validation_rejects;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic verdicts" `Quick test_injector_deterministic;
          Alcotest.test_case "certain drop" `Quick test_injector_certain_drop;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "none plan is inert" `Quick test_wiring_none_is_inert;
          Alcotest.test_case "unknown target rejected" `Quick test_wiring_unknown_target_rejected;
          Alcotest.test_case "crash/restart timeline" `Quick test_wiring_crash_restart_timeline;
          Alcotest.test_case "rekey skips down server" `Quick test_rekey_skips_down_server;
          Alcotest.test_case "stall skips boundaries" `Quick test_stall_skips_boundaries;
        ] );
      ( "inject",
        [
          Alcotest.test_case "trace digest deterministic" `Slow test_digest_deterministic;
          Alcotest.test_case "escalation ordering" `Slow test_escalation_ordering;
        ] );
      ( "causal",
        [
          Alcotest.test_case "off-path digest and EL unchanged" `Slow
            test_causal_off_digest_unchanged;
          Alcotest.test_case "jobs invariant" `Slow test_causal_jobs_invariant;
          Alcotest.test_case "stream carries spans and chains" `Slow
            test_causal_stream_carries_spans_and_chains;
        ] );
    ]
