module Json = Fortress_obs.Json
module Event = Fortress_obs.Event
module Metrics = Fortress_obs.Metrics
module Span = Fortress_obs.Span
module Sink = Fortress_obs.Sink
module Summary = Fortress_obs.Summary
module Timeline = Fortress_obs.Timeline
module Signal = Fortress_obs.Signal
module Openmetrics = Fortress_obs.Openmetrics
module Engine = Fortress_sim.Engine

(* ---- Json ---- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("i", Json.Num 42.0);
        ("f", Json.Num 1.5);
        ("s", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Num 1.0; Json.Str "x"; Json.Bool false ]);
        ("o", Json.Obj [ ("nested", Json.Num (-3.0)) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trips" true (doc = doc')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_integers_compact () =
  Alcotest.(check string) "integral floats have no point" "{\"t\":300}"
    (Json.to_string (Json.Obj [ ("t", Json.Num 300.0) ]));
  Alcotest.(check string) "non-integral keeps fraction" "0.5" (Json.to_string (Json.Num 0.5))

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with Ok _ -> Alcotest.fail ("accepted: " ^ s) | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated"

let parse_str s =
  match Json.parse s with
  | Ok (Json.Str v) -> v
  | Ok _ -> Alcotest.failf "parsed %s to a non-string" s
  | Error e -> Alcotest.failf "rejected %s: %s" s e

let test_json_unicode_escapes () =
  Alcotest.(check string) "BMP escape" "A" (parse_str {|"\u0041"|});
  Alcotest.(check string) "non-ASCII BMP escape" "\xc3\xa9" (parse_str {|"\u00e9"|});
  Alcotest.(check string) "case-insensitive hex" "\xc3\xa9" (parse_str {|"\u00E9"|});
  Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" (parse_str {|"\ud83d\ude00"|});
  (* a lone high surrogate is not a scalar value: replacement character *)
  Alcotest.(check string) "lone high surrogate" "\xef\xbf\xbdx" (parse_str {|"\ud800x"|});
  Alcotest.(check string) "unpaired high surrogate before plain char" "\xef\xbf\xbdA"
    (parse_str {|"\ud83dA"|});
  (* a high surrogate followed by a \u escape that is not a low surrogate *)
  (match Json.parse "\"\\ud83d\\u0041\"" with
  | Ok _ -> Alcotest.fail "accepted a malformed surrogate pair"
  | Error e ->
      Alcotest.(check bool) "low surrogate error" true
        (String.length e > 0 && String.ends_with ~suffix:"invalid low surrogate" e));
  (* non-hex digits are a parse error, not an uncaught exception *)
  match Json.parse {|"ab\uZZZZ"|} with
  | Ok _ -> Alcotest.fail "accepted non-hex \\u escape"
  | Error e -> Alcotest.(check string) "offset names offending char" "at 5: invalid \\u escape" e

let test_json_nested_depth () =
  let depth = 256 in
  let s =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  match Json.parse s with
  | Error e -> Alcotest.failf "depth %d rejected: %s" depth e
  | Ok doc ->
      let rec unwrap n = function
        | Json.List [ inner ] -> unwrap (n + 1) inner
        | Json.Num 1.0 -> n
        | _ -> Alcotest.fail "unexpected shape"
      in
      Alcotest.(check int) "full depth preserved" depth (unwrap 0 doc);
      Alcotest.(check string) "re-emits identically" s (Json.to_string doc)

let test_json_error_offsets () =
  let offset_of s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted: %s" s
    | Error e -> (
        (* errors are "at <offset>: <message>" *)
        match String.index_opt e ':' with
        | Some i -> int_of_string (String.sub e 3 (i - 3))
        | None -> Alcotest.failf "unparseable error: %s" e)
  in
  Alcotest.(check int) "missing array element" 3 (offset_of "[1,]");
  Alcotest.(check int) "missing object value" 5 (offset_of {|{"a":}|});
  Alcotest.(check int) "bare comma at start" 0 (offset_of ",");
  Alcotest.(check int) "trailing garbage" 7 (offset_of {|{"a":1}x|});
  Alcotest.(check int) "unknown escape" 3 (offset_of {|"a\q"|});
  Alcotest.(check int) "truncated input" 1 (offset_of "[")

let test_json_accessors () =
  match Json.parse "{\"a\": 7, \"b\": \"x\", \"c\": [1,2]}" with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      Alcotest.(check (option int)) "int member" (Some 7)
        (Option.bind (Json.member "a" doc) Json.int);
      Alcotest.(check (option string)) "str member" (Some "x")
        (Option.bind (Json.member "b" doc) Json.str);
      Alcotest.(check int) "list member" 2
        (List.length (Option.get (Option.bind (Json.member "c" doc) Json.list)));
      Alcotest.(check (option int)) "missing member" None
        (Option.bind (Json.member "zzz" doc) Json.int)

(* ---- Event ---- *)

let all_events =
  [
    Event.Probe
      { kind = Event.Direct; tier = Event.Proxy_tier; target = 2; outcome = Event.Crashed };
    Event.Probe
      { kind = Event.Indirect; tier = Event.Server_tier; target = 0; outcome = Event.Intruded };
    Event.Probe
      { kind = Event.Launchpad; tier = Event.Server_tier; target = 1; outcome = Event.Blocked };
    Event.Compromise { tier = Event.Proxy_tier; index = 1 };
    Event.Rekey { nodes = 6 };
    Event.Recover { nodes = 4 };
    Event.Step { n = 17 };
    Event.Invalid_observed { proxy = 0 };
    Event.Source_blocked { proxy = 2; source = 31 };
    Event.Source_rotated { burned = 5 };
    Event.Request_submitted { id = "r-1" };
    Event.Request_completed { id = "r-1"; accepted = true };
    Event.Reply_rejected { id = "r-2" };
    Event.Msg_delivered { src = 3; dst = 9 };
    Event.Msg_dropped { src = 3; dst = 9; reason = "partition" };
    Event.Failover { proto = "pb"; replica = 1; view = 4 };
    Event.Repl { proto = "smr"; kind = "restore"; detail = "replica 2 restored" };
    Event.Trial { index = 12; seed = 42; lifetime = Some 33.0 };
    Event.Trial { index = 13; seed = 42; lifetime = None };
    Event.Span_finished
      {
        id = 3;
        parent = Some 1;
        name = "client.request";
        start_time = 10.0;
        duration = 2.5;
        attrs = [ ("id", "r-1") ];
      };
    Event.Note { label = "daemon"; detail = "intrusion: correct key probed" };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trips %s" (Event.label ev))
            true (ev = ev')
      | Error e -> Alcotest.fail (Event.label ev ^ ": " ^ e))
    all_events

let test_event_labels_and_verbosity () =
  Alcotest.(check string) "probe label" "probe"
    (Event.label (List.hd all_events));
  Alcotest.(check string) "note uses embedded label" "daemon"
    (Event.label (Event.Note { label = "daemon"; detail = "d" }));
  (* high-rate events must not take trace-ring slots *)
  List.iter
    (fun ev ->
      Alcotest.(check bool)
        (Event.label ev ^ " is debug")
        true
        (Event.verbosity ev = `Debug))
    [
      List.hd all_events;
      Event.Msg_delivered { src = 0; dst = 1 };
      Event.Request_submitted { id = "x" };
      Event.Invalid_observed { proxy = 0 };
    ];
  List.iter
    (fun ev ->
      Alcotest.(check bool) (Event.label ev ^ " is info") true (Event.verbosity ev = `Info))
    [ Event.Rekey { nodes = 3 }; Event.Compromise { tier = Event.Server_tier; index = 0 } ]

(* ---- Metrics ---- *)

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events.probe" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "same handle on re-registration" 5
    (Metrics.counter_value (Metrics.counter m "events.probe"));
  Alcotest.(check int) "find_counter" 5 (Metrics.find_counter m "events.probe");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.find_counter m "nope");
  let g = Metrics.gauge m "clock" in
  Metrics.set g 12.5;
  Alcotest.(check (float 0.0)) "gauge" 12.5 (Metrics.gauge_value g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"events.probe\" is already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "events.probe"))

let test_metrics_histogram_snapshot_reset () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~lo:0.0 ~hi:10.0 ~bins:5 "lifetimes" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 7.0; 42.0 ];
  let c = Metrics.counter m "n" in
  Metrics.incr c;
  (match Metrics.snapshot m with
  | [ ("lifetimes", Metrics.Histogram { count; overflow; _ }); ("n", Metrics.Counter 1) ] ->
      Alcotest.(check int) "histogram count" 4 count;
      Alcotest.(check int) "overflow" 1 overflow
  | _ -> Alcotest.fail "unexpected snapshot shape");
  Metrics.reset m;
  Alcotest.(check int) "counter zeroed, handle survives" 0 (Metrics.counter_value c);
  (match Metrics.snapshot m with
  | [ ("lifetimes", Metrics.Histogram { count; _ }); ("n", Metrics.Counter 0) ] ->
      Alcotest.(check int) "histogram emptied" 0 count
  | _ -> Alcotest.fail "registrations must survive reset");
  Alcotest.(check bool) "renders" true (String.length (Metrics.render m) > 0)

let test_metrics_find_gauge_and_histogram () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.0)) "absent gauge reads 0" 0.0 (Metrics.find_gauge m "nope");
  Alcotest.(check bool) "absent histogram is None" true (Metrics.find_histogram m "nope" = None);
  let g = Metrics.gauge m "clock" in
  Metrics.set g 2.5;
  Alcotest.(check (float 0.0)) "find_gauge" 2.5 (Metrics.find_gauge m "clock");
  Alcotest.(check (float 0.0)) "find_gauge on a counter name reads 0" 0.0
    (Metrics.find_gauge m "nope.counter");
  let h = Metrics.histogram m ~lo:0.0 ~hi:10.0 ~bins:5 "h" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 7.0; 42.0 ];
  match Metrics.find_histogram m "h" with
  | None -> Alcotest.fail "registered histogram not found"
  | Some data -> (
      Alcotest.(check (float 1e-9)) "Histogram.sum tracks observations" 53.0
        (Fortress_util.Histogram.sum data);
      match Metrics.histogram_value data with
      | Metrics.Histogram { count; overflow; sum; buckets; _ } as v ->
          Alcotest.(check int) "count includes overflow" 4 count;
          Alcotest.(check int) "overflow" 1 overflow;
          Alcotest.(check (float 1e-9)) "value carries sum" 53.0 sum;
          Alcotest.(check int) "bucket list" 5 (List.length buckets);
          (* rank 2 lands at the top of the [2,4) bucket *)
          Alcotest.(check (option (float 1e-9))) "p50 interpolates" (Some 4.0)
            (Metrics.quantile v 0.5);
          (* overflow mass clamps to the highest finite edge *)
          Alcotest.(check (option (float 1e-9))) "p100 clamps overflow" (Some 10.0)
            (Metrics.quantile v 1.0);
          Alcotest.(check bool) "counters have no quantile" true
            (Metrics.quantile (Metrics.Counter 3) 0.5 = None)
      | _ -> Alcotest.fail "histogram_value did not return a Histogram")

(* ---- Span ---- *)

let test_span_lifecycle () =
  let clock = ref 0.0 in
  let ctx = Span.create ~now:(fun () -> !clock) () in
  let finished = ref [] in
  Span.set_on_finish ctx (fun ev -> finished := ev :: !finished);
  let root = Span.start ctx "step" in
  clock := 5.0;
  let child = Span.start ctx ~parent:root "request" in
  Span.set_attr child "id" "r-9";
  Alcotest.(check int) "two active" 2 (Span.active_count ctx);
  clock := 8.0;
  Span.finish ctx child;
  Span.finish ctx child;
  (* idempotent *)
  clock := 10.0;
  Span.finish ctx root;
  Alcotest.(check int) "none active" 0 (Span.active_count ctx);
  Alcotest.(check int) "two finished" 2 (Span.finished_count ctx);
  match List.rev !finished with
  | [
   Event.Span_finished { name; start_time; duration; parent; attrs; _ };
   Event.Span_finished { duration = root_duration; _ };
  ] ->
      Alcotest.(check string) "child name" "request" name;
      Alcotest.(check (float 0.0)) "child start" 5.0 start_time;
      Alcotest.(check (float 0.0)) "child duration" 3.0 duration;
      Alcotest.(check (option int)) "parent link" (Some (Span.id root)) parent;
      Alcotest.(check (list (pair string string))) "attrs" [ ("id", "r-9") ] attrs;
      Alcotest.(check (float 0.0)) "root duration" 10.0 root_duration
  | _ -> Alcotest.fail "expected exactly two Span_finished events"

(* ---- Sink ---- *)

let test_sink_subscribers_and_detach () =
  let sink = Sink.create () in
  let a = ref 0 and b = ref 0 in
  let ha = Sink.attach sink (fun ~time:_ _ -> incr a) in
  ignore (Sink.attach sink (fun ~time:_ _ -> incr b));
  Sink.emit sink ~time:1.0 (Event.Rekey { nodes = 3 });
  Sink.detach sink ha;
  Sink.detach sink ha;
  (* double detach is a no-op *)
  Sink.emit sink ~time:2.0 (Event.Rekey { nodes = 3 });
  Alcotest.(check int) "detached saw one" 1 !a;
  Alcotest.(check int) "live saw both" 2 !b;
  Alcotest.(check int) "emitted total" 2 (Sink.emitted sink)

let test_sink_jsonl_roundtrip () =
  let lines = ref [] in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Sink.jsonl (fun l -> lines := l :: !lines)));
  List.iteri (fun i ev -> Sink.emit sink ~time:(float_of_int i) ev) all_events;
  let parsed = List.rev_map Sink.parse_line !lines in
  Alcotest.(check int) "all lines parse" (List.length all_events) (List.length parsed);
  List.iteri
    (fun i -> function
      | Ok (t, ev) ->
          Alcotest.(check (float 0.0)) "time preserved" (float_of_int i) t;
          Alcotest.(check bool)
            (Event.label ev ^ " round-trips")
            true
            (ev = List.nth all_events i)
      | Error e -> Alcotest.fail e)
    parsed

let test_sink_counting_and_memory () =
  let m = Metrics.create () in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Sink.counting m));
  let mem, recent = Sink.memory ~capacity:2 () in
  ignore (Sink.attach sink mem);
  Sink.emit sink ~time:0.0
    (Event.Probe
       { kind = Event.Direct; tier = Event.Proxy_tier; target = 0; outcome = Event.Crashed });
  Sink.emit sink ~time:1.0
    (Event.Probe
       { kind = Event.Indirect; tier = Event.Server_tier; target = 0; outcome = Event.Intruded });
  Sink.emit sink ~time:2.0 (Event.Rekey { nodes = 6 });
  Alcotest.(check int) "probe label counted" 2 (Metrics.find_counter m "events.probe");
  Alcotest.(check int) "kind counted" 1 (Metrics.find_counter m "probe.direct");
  Alcotest.(check int) "outcome counted" 1 (Metrics.find_counter m "probe.intrusion");
  Alcotest.(check int) "rekey counted" 1 (Metrics.find_counter m "events.rekey");
  match recent () with
  | [ (1.0, Event.Probe _); (2.0, Event.Rekey _) ] -> ()
  | l -> Alcotest.fail (Printf.sprintf "memory ring kept %d unexpected events" (List.length l))

let test_sink_line_deterministic_roundtrip () =
  (* Renders depend only on the event, never on hashing or environment:
     line -> parse_line -> line must be byte-identical for every event
     shape, which is what makes trace digests stable across runs and
     OCaml versions. *)
  List.iteri
    (fun i ev ->
      let time = 0.5 +. float_of_int i in
      let rendered = Sink.line ~time ev in
      match Sink.parse_line rendered with
      | Error e -> Alcotest.failf "%s does not parse back: %s" (Event.label ev) e
      | Ok (time', ev') ->
          Alcotest.(check string)
            (Event.label ev ^ " re-renders byte-identically")
            rendered
            (Sink.line ~time:time' ev'))
    all_events

let test_sink_file_flushes_and_closes () =
  let path = Filename.temp_file "fortress-sink" ".jsonl" in
  let sub, close = Sink.file path in
  let sink = Sink.create () in
  ignore (Sink.attach sink sub);
  Sink.emit sink ~time:1.0 (Event.Rekey { nodes = 3 });
  Sink.emit sink ~time:2.0 (Event.Step { n = 1 });
  close ();
  close ();
  (* idempotent *)
  (* writes after close are dropped, not crashes on a dead descriptor *)
  Sink.emit sink ~time:3.0 (Event.Step { n = 2 });
  let s = Summary.of_file path in
  Sys.remove path;
  Alcotest.(check int) "both pre-close events on disk" 2 s.Summary.total;
  Alcotest.(check int) "nothing malformed" 0 s.Summary.malformed

(* ---- Engine integration ---- *)

let test_engine_emit_feeds_metrics_and_trace () =
  let e = Engine.create () in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         Engine.emit e (Event.Rekey { nodes = 6 });
         Engine.emit e (Event.Msg_delivered { src = 0; dst = 1 })));
  Engine.run e;
  Alcotest.(check int) "metrics counted both" 1
    (Fortress_obs.Metrics.find_counter (Engine.metrics e) "events.rekey");
  Alcotest.(check int) "debug event counted too" 1
    (Fortress_obs.Metrics.find_counter (Engine.metrics e) "events.msg_delivered");
  (* only the `Info event takes a ring slot; both bump trace counters *)
  Alcotest.(check int) "one ring entry" 1 (Fortress_sim.Trace.length (Engine.trace e));
  Alcotest.(check int) "trace counter for debug event" 1
    (Fortress_sim.Trace.counter (Engine.trace e) "msg_delivered")

let test_engine_spans_use_virtual_time () =
  let e = Engine.create () in
  let mem, recent = Sink.memory () in
  ignore (Sink.attach (Engine.sink e) mem);
  let sp = ref None in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> sp := Some (Engine.span e "phase")));
  ignore (Engine.schedule e ~delay:7.0 (fun () -> Engine.finish_span e (Option.get !sp)));
  Engine.run e;
  Alcotest.(check int) "span event counted" 1
    (Fortress_obs.Metrics.find_counter (Engine.metrics e) "events.span");
  match recent () with
  | [ (7.0, Event.Span_finished { name; start_time; duration; _ }) ] ->
      Alcotest.(check string) "name" "phase" name;
      Alcotest.(check (float 0.0)) "started at virtual t=2" 2.0 start_time;
      Alcotest.(check (float 0.0)) "virtual duration" 5.0 duration
  | _ -> Alcotest.fail "expected one Span_finished at t=7"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---- Timeline ---- *)

let probe_ev ?(kind = Event.Direct) ?(outcome = Event.Crashed) () =
  Event.Probe { kind; tier = Event.Proxy_tier; target = 0; outcome }

let watched_timeline ?capacity ?registry ~width () =
  let tl = Timeline.create ?capacity ?registry ~width () in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Timeline.subscriber tl));
  (tl, sink)

let test_timeline_window_boundaries () =
  let tl, sink = watched_timeline ~width:10.0 () in
  (* an event exactly on the edge t = k*width belongs to window k, and
     negative times clamp to window 0 *)
  List.iter
    (fun t -> Sink.emit sink ~time:t (Event.Rekey { nodes = 1 }))
    [ 0.0; 9.999; -3.0; 10.0; 20.0 ];
  Timeline.finish tl;
  match Timeline.windows tl with
  | [ w0; w1; w2 ] ->
      Alcotest.(check int) "window 0 owns [0,w) plus the negative clamp" 3 w0.Timeline.total;
      Alcotest.(check (float 0.0)) "w1 lower edge" 10.0 w1.Timeline.t_lo;
      Alcotest.(check (float 0.0)) "w1 upper edge" 20.0 w1.Timeline.t_hi;
      Alcotest.(check int) "t = width falls in window 1" 1 w1.Timeline.total;
      Alcotest.(check int) "t = 2*width falls in window 2" 1 w2.Timeline.total;
      Alcotest.(check int) "events_seen" 5 (Timeline.events_seen tl);
      Alcotest.(check int) "per-key count" 3 (Timeline.count w0 "events.rekey");
      Alcotest.(check (float 1e-9)) "rate is count per unit vt" 0.3
        (Timeline.rate tl w0 "events.rekey")
  | ws -> Alcotest.failf "expected 3 windows, got %d" (List.length ws)

let test_timeline_ring_eviction_and_late_drop () =
  let tl, sink = watched_timeline ~capacity:2 ~width:1.0 () in
  List.iter
    (fun t -> Sink.emit sink ~time:t (Event.Rekey { nodes = 1 }))
    [ 0.5; 1.5; 2.5; 3.5 ];
  (* window 0 has been evicted; window 2 is still retained *)
  Sink.emit sink ~time:0.2 (Event.Rekey { nodes = 1 });
  Sink.emit sink ~time:2.2 (Event.Rekey { nodes = 1 });
  Timeline.finish tl;
  Alcotest.(check int) "four windows ever opened" 4 (Timeline.window_count tl);
  Alcotest.(check int) "one late event dropped" 1 (Timeline.dropped tl);
  Alcotest.(check int) "seen counts the dropped event too" 6 (Timeline.events_seen tl);
  Alcotest.(check int) "totals count only landed events" 5 (Timeline.total tl "events.rekey");
  match Timeline.windows tl with
  | [ w2; w3 ] ->
      Alcotest.(check int) "late event landed in retained window" 2 w2.Timeline.total;
      Alcotest.(check int) "frontier window" 1 w3.Timeline.total
  | ws -> Alcotest.failf "expected 2 retained windows, got %d" (List.length ws)

let test_timeline_gap_compression () =
  let tl, sink = watched_timeline ~capacity:4 ~width:1.0 () in
  Sink.emit sink ~time:0.5 (Event.Rekey { nodes = 1 });
  Sink.emit sink ~time:100.5 (Event.Rekey { nodes = 1 });
  Timeline.finish tl;
  (* the 96 windows the ring would immediately evict are skipped but still
     counted; the retained ring ends at the frontier *)
  Alcotest.(check int) "opened counts the skipped gap" 101 (Timeline.window_count tl);
  Alcotest.(check int) "nothing dropped" 0 (Timeline.dropped tl);
  let ws = Timeline.windows tl in
  Alcotest.(check int) "ring holds capacity windows" 4 (List.length ws);
  let last = List.nth ws (List.length ws - 1) in
  Alcotest.(check int) "frontier window index" 100 last.Timeline.index;
  Alcotest.(check int) "frontier window holds the event" 1 last.Timeline.total

let test_timeline_hooks_fire_once_in_order () =
  let tl, sink = watched_timeline ~width:1.0 () in
  let closed = ref [] in
  Timeline.on_window tl (fun w -> closed := w.Timeline.index :: !closed);
  (* the jump 1.5 -> 3.5 opens the empty window 2; its hook still fires *)
  List.iter
    (fun t -> Sink.emit sink ~time:t (Event.Rekey { nodes = 1 }))
    [ 0.5; 1.5; 3.5 ];
  Alcotest.(check (list int)) "closed up to the frontier" [ 0; 1; 2 ] (List.rev !closed);
  Timeline.finish tl;
  Timeline.finish tl;
  Alcotest.(check (list int)) "finish closes the frontier once" [ 0; 1; 2; 3 ]
    (List.rev !closed)

let test_timeline_registry_attribution () =
  let reg = Metrics.create () in
  (* timeline attached before counting: close-time snapshots exclude the
     event that advanced the frontier *)
  let tl, sink = watched_timeline ~registry:reg ~width:10.0 () in
  ignore (Sink.attach sink (Sink.counting reg));
  Sink.emit sink ~time:1.0 (Event.Rekey { nodes = 1 });
  Sink.emit sink ~time:2.0 (Event.Rekey { nodes = 1 });
  Sink.emit sink ~time:11.0 (Event.Rekey { nodes = 1 });
  Timeline.finish tl;
  (match Timeline.windows tl with
  | [ w0; w1 ] ->
      Alcotest.(check (option int)) "window 0 counter delta" (Some 2)
        (List.assoc_opt "events.rekey" w0.Timeline.counters);
      Alcotest.(check (option int)) "window 1 counter delta" (Some 1)
        (List.assoc_opt "events.rekey" w1.Timeline.counters)
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws));
  match Metrics.find_histogram reg "timeline.window_events" with
  | None -> Alcotest.fail "timeline.window_events not registered"
  | Some data ->
      Alcotest.(check int) "one observation per closed window" 2
        (Fortress_util.Histogram.count data)

let test_timeline_ignores_signal_alarms () =
  let tl, sink = watched_timeline ~width:10.0 () in
  Sink.emit sink ~time:1.0 (Event.Note { label = "signal.alarm"; detail = "x" });
  Sink.emit sink ~time:1.0 (Event.Rekey { nodes = 1 });
  Timeline.finish tl;
  Alcotest.(check int) "alarm notes invisible to the plane" 1 (Timeline.events_seen tl);
  Alcotest.(check int) "not counted" 0 (Timeline.total tl "events.signal.alarm")

let prop_timeline_counts_match_counting =
  (* the per-window counts, summed, must equal the terminal Sink.counting
     counters on the same stream — the keys mirror each other exactly *)
  QCheck.Test.make ~count:60 ~name:"window counts sum to terminal counters"
    QCheck.(list_of_size Gen.(int_range 0 150) (pair (float_bound_inclusive 5000.0) (int_bound 5)))
    (fun events ->
      let reg = Metrics.create () in
      let tl = Timeline.create ~width:10.0 () in
      let sink = Sink.create () in
      ignore (Sink.attach sink (Timeline.subscriber tl));
      ignore (Sink.attach sink (Sink.counting reg));
      (* anchor the ring at window 0 so no out-of-order event can be
         dropped: indices stay below the default capacity *)
      Sink.emit sink ~time:0.0 (Event.Step { n = 0 });
      List.iter
        (fun (time, which) ->
          let ev =
            match which with
            | 0 -> probe_ev ~kind:Event.Direct ~outcome:Event.Crashed ()
            | 1 -> probe_ev ~kind:Event.Indirect ~outcome:Event.Intruded ()
            | 2 -> Event.Rekey { nodes = 3 }
            | 3 -> Event.Invalid_observed { proxy = 0 }
            | 4 -> Event.Source_blocked { proxy = 0; source = 1 }
            | _ -> Event.Fault { action = "crash"; target = "s"; detail = "" }
          in
          Sink.emit sink ~time ev)
        events;
      Timeline.finish tl;
      let windows = Timeline.windows tl in
      let summed key =
        List.fold_left (fun acc w -> acc + Timeline.count w key) 0 windows
      in
      List.for_all
        (fun (name, v) ->
          match v with
          | Metrics.Counter n -> summed name = n && Timeline.total tl name = n
          | _ -> true)
        (Metrics.snapshot reg))

(* ---- Signal ---- *)

(* Synthetic stream: [specs] is one (invalid-count, rekey?) pair per
   100-vt window, in order. *)
let feed_spec_stream sink specs =
  List.iteri
    (fun idx (invalid, rekey) ->
      let base = float_of_int idx *. 100.0 in
      Sink.emit sink ~time:base (Event.Step { n = idx });
      if rekey then Sink.emit sink ~time:(base +. 1.0) (Event.Rekey { nodes = 1 });
      for i = 1 to invalid do
        Sink.emit sink ~time:(base +. 2.0 +. (0.01 *. float_of_int i))
          (Event.Invalid_observed { proxy = 0 })
      done)
    specs

let test_signal_staleness_cusum_alarm () =
  let tl, sink = watched_timeline ~width:100.0 () in
  (* rekey only in window 0; staleness then ramps by 100 vt per window.
     With slack 150 / threshold 250 the CUSUM crosses at window 4:
     s = 0, 0, 50, 200, 450 -> alarm, reset; then 350 and 450 again. *)
  feed_spec_stream sink
    [ (0, true); (0, false); (0, false); (0, false); (0, false); (0, false); (0, false) ];
  Timeline.finish tl;
  let sg = Signal.of_timeline tl in
  let stale_alarms =
    List.filter_map
      (fun (k, p) -> if k = Signal.Rekey_staleness then Some p.Signal.window else None)
      (Signal.alarms sg)
  in
  Alcotest.(check (list int)) "alarm windows" [ 4; 5; 6 ] stale_alarms;
  let pts = Signal.series sg Signal.Rekey_staleness in
  Alcotest.(check int) "one point per window" 7 (List.length pts);
  Alcotest.(check (float 1e-9)) "staleness at window 3" 300.0
    ((List.nth pts 3).Signal.raw);
  match Signal.latest sg Signal.Rekey_staleness with
  | Some p -> Alcotest.(check (float 1e-9)) "latest raw" 600.0 p.Signal.raw
  | None -> Alcotest.fail "no latest point"

let test_signal_rate_burst_alarm_and_steady_silence () =
  let steady = List.init 10 (fun _ -> (5, true)) in
  (* steady 0.05/vt: the adaptive reference tracks it, no alarms *)
  let tl, sink = watched_timeline ~width:100.0 () in
  feed_spec_stream sink steady;
  Timeline.finish tl;
  let sg = Signal.of_timeline tl in
  Alcotest.(check int) "steady stream raises nothing" 0 (List.length (Signal.alarms sg));
  (* same stream plus a 8x burst: invalid-probe-rate alarms on the jump *)
  let tl, sink = watched_timeline ~width:100.0 () in
  feed_spec_stream sink (steady @ [ (40, true) ]);
  Timeline.finish tl;
  let sg = Signal.of_timeline tl in
  let invalid_alarms =
    List.filter_map
      (fun (k, p) -> if k = Signal.Invalid_probe_rate then Some p.Signal.window else None)
      (Signal.alarms sg)
  in
  Alcotest.(check (list int)) "burst trips the detector on its window" [ 10 ] invalid_alarms

let test_signal_streaming_equals_batch () =
  let specs = [ (5, true); (5, false); (30, false); (2, true); (0, false); (12, false) ] in
  let batch_tl, batch_sink = watched_timeline ~width:100.0 () in
  feed_spec_stream batch_sink specs;
  Timeline.finish batch_tl;
  let batch = Signal.of_timeline batch_tl in
  let stream_tl, stream_sink = watched_timeline ~width:100.0 () in
  let stream = Signal.create stream_tl in
  feed_spec_stream stream_sink specs;
  Timeline.finish stream_tl;
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Signal.kind_name kind ^ " series agree")
        true
        (Signal.series batch kind = Signal.series stream kind))
    Signal.all;
  Alcotest.(check bool) "alarm lists agree" true (Signal.alarms batch = Signal.alarms stream);
  (* and the batch fold is reproducible from the same timeline *)
  let again = Signal.of_timeline batch_tl in
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Signal.kind_name kind ^ " refold identical")
        true
        (Signal.series batch kind = Signal.series again kind))
    Signal.all

let test_signal_alarms_emit_without_feedback () =
  let reg = Metrics.create () in
  let tl = Timeline.create ~width:100.0 () in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Timeline.subscriber tl));
  ignore (Sink.attach sink (Sink.counting reg));
  (* streaming signals publishing alarms back onto the watched sink *)
  let sg = Signal.create ~emit:(fun ~time ev -> Sink.emit sink ~time ev) tl in
  feed_spec_stream sink
    [ (0, true); (0, false); (0, false); (0, false); (0, false); (0, false) ];
  Timeline.finish tl;
  Alcotest.(check bool) "staleness alarmed" true (List.length (Signal.alarms sg) > 0);
  Alcotest.(check int) "alarm notes reached other subscribers"
    (List.length (Signal.alarms sg))
    (Metrics.find_counter reg "events.signal.alarm");
  Alcotest.(check int) "plane blind to its own detector" 0
    (Timeline.total tl "events.signal.alarm")

let test_signal_table_renders () =
  let tl, sink = watched_timeline ~width:100.0 () in
  Sink.emit sink ~time:1.0 (Event.Fault { action = "crash"; target = "s"; detail = "" });
  Sink.emit sink ~time:101.0 (Event.Rekey { nodes = 1 });
  Timeline.finish tl;
  let sg = Signal.of_timeline tl in
  let rendered = Fortress_util.Table.render (Signal.table ~timeline:tl sg) in
  Alcotest.(check bool) "fault column aligned" true (contains ~needle:"crash:1" rendered);
  Alcotest.(check bool) "has signal columns" true (contains ~needle:"stale" rendered)

(* ---- Engine telemetry ---- *)

let test_engine_attach_telemetry () =
  let e = Engine.create () in
  let tl, sg = Engine.attach_telemetry ~window:10.0 e in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () -> Engine.emit e (Event.Rekey { nodes = 2 })));
  ignore
    (Engine.schedule e ~delay:25.0 (fun () ->
         Engine.emit e (Event.Invalid_observed { proxy = 0 })));
  Engine.run e;
  Timeline.finish tl;
  Alcotest.(check int) "timeline saw the rekey" 1 (Timeline.total tl "events.rekey");
  Alcotest.(check int) "three windows" 3 (List.length (Timeline.windows tl));
  Alcotest.(check int) "one signal point per window" 3
    (List.length (Signal.series sg Signal.Invalid_probe_rate));
  (* the engine registry carries the signal gauges and window histogram *)
  Alcotest.(check (float 1e-9)) "stale gauge live in engine metrics" 20.0
    (Fortress_obs.Metrics.find_gauge (Engine.metrics e) "signal.stale");
  Alcotest.(check bool) "window histogram registered" true
    (Fortress_obs.Metrics.find_histogram (Engine.metrics e) "timeline.window_events" <> None)

(* ---- OpenMetrics ---- *)

let test_openmetrics_exposition () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter reg "events.rekey");
  Metrics.set (Metrics.gauge reg "clock") 12.5;
  let h = Metrics.histogram reg ~lo:0.0 ~hi:10.0 ~bins:5 "lat" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 7.0; 42.0 ];
  let tl = Timeline.create ~width:100.0 () in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Timeline.subscriber tl));
  feed_spec_stream sink [ (2, true); (1, false) ];
  Timeline.finish tl;
  let sg = Signal.of_timeline ~registry:reg tl in
  let text = Openmetrics.render ~metrics:reg ~timeline:tl ~signals:sg () in
  Alcotest.(check bool) "terminated" true (String.ends_with ~suffix:"# EOF\n" text);
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle text))
    [
      "fortress_events_rekey_total 3";
      "fortress_clock 12.5";
      "fortress_lat_bucket{le=\"+Inf\"} 4";
      "fortress_lat_sum 53";
      "fortress_lat_count 4";
      "fortress_timeline_windows 2";
      "fortress_timeline_key_total{key=\"events.invalid_observed\"} 3";
      "fortress_signal_raw{signal=\"rekey-staleness\"}";
      "fortress_signal_alarms_total{signal=\"crash-burst\"} 0";
    ];
  (* cumulative buckets never decrease *)
  let bucket_counts =
    List.filter_map
      (fun line ->
        if String.length line > 19 && String.sub line 0 19 = "fortress_lat_bucket" then
          String.index_opt line '}'
          |> Option.map (fun i ->
                 int_of_string
                   (String.trim (String.sub line (i + 1) (String.length line - i - 1))))
        else None)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "buckets cumulative" true
    (List.sort compare bucket_counts = bucket_counts);
  (* exactly one family per name: the registry's signal.* entries are
     superseded by the labelled signal section *)
  let type_lines =
    List.filter (String.starts_with ~prefix:"# TYPE") (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "no duplicate families"
    (List.length (List.sort_uniq compare type_lines))
    (List.length type_lines)

(* Label values pass through escape_label; a timeline keyed by adversarial
   strings (quotes, backslashes, newlines — e.g. a fault target named from
   attacker-controlled input) must still render a parseable, single-line
   exposition. *)
let test_openmetrics_adversarial_labels () =
  Alcotest.(check string) "backslash" {|a\\b|} (Openmetrics.escape_label {|a\b|});
  Alcotest.(check string) "quote" {|say \"hi\"|} (Openmetrics.escape_label {|say "hi"|});
  Alcotest.(check string) "newline" {|two\nlines|} (Openmetrics.escape_label "two\nlines");
  Alcotest.(check string) "combined" {|\\\"\n|} (Openmetrics.escape_label "\\\"\n");
  Alcotest.(check string) "braces verbatim" "{x=,}" (Openmetrics.escape_label "{x=,}");
  let tl = Timeline.create ~width:100.0 () in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Timeline.subscriber tl));
  Sink.emit sink ~time:1.0
    (Event.Fault { action = "crash\"} evil 1\n#"; target = "s\\0"; detail = "" });
  Timeline.finish tl;
  let text = Openmetrics.render ~timeline:tl () in
  Alcotest.(check bool) "escaped key rendered" true
    (contains ~needle:{|key="fault.crash\"} evil 1\n#"|} text);
  (* every line is still NAME ... or a comment: no label value broke out *)
  List.iter
    (fun line ->
      if line <> "" && not (String.starts_with ~prefix:"#" line) then
        Alcotest.(check bool)
          ("well-formed line: " ^ line)
          true
          (String.length line > 0
          && (match line.[0] with
             | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
             | _ -> false)))
    (String.split_on_char '\n' text)

let test_openmetrics_sanitize_names () =
  Alcotest.(check string) "dots to underscores" "events_rekey"
    (Openmetrics.sanitize "events.rekey");
  Alcotest.(check string) "leading digit guarded" "_9front" (Openmetrics.sanitize "9front");
  Alcotest.(check string) "empty guarded" "_" (Openmetrics.sanitize "");
  Alcotest.(check string) "unicode flattened" "caf_" (Openmetrics.sanitize "caf\xc3");
  (* a digit-led prefix yields a legal metric name end to end *)
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg "hits");
  let text = Openmetrics.render ~prefix:"0day" ~metrics:reg () in
  Alcotest.(check bool) "prefixed family legal" true
    (contains ~needle:"_0day_hits_total 1" text)

(* ---- Summary ---- *)

let campaign_trace () =
  let sink = Sink.create () in
  let mem, recent = Sink.memory ~capacity:200_000 () in
  ignore (Sink.attach sink mem);
  let lifetime =
    Fortress_exp.Validation.campaign_lifetime ~sink ~chi:256 ~omega:8 ~kappa:0.5 ~seed:3 ()
  in
  (lifetime, recent ())

let test_summary_of_campaign_consistent () =
  let lifetime, events = campaign_trace () in
  Alcotest.(check bool) "campaign ended" true (lifetime <> None);
  let summary = Summary.of_events events in
  Alcotest.(check bool) "saw steps" true (summary.Summary.steps > 0);
  Alcotest.(check bool) "saw probes" true (summary.Summary.probes_direct > 0);
  Alcotest.(check bool) "renders" true (String.length (Summary.render summary) > 0);
  let checks = Summary.consistency ~omega:8 ~chi:256 ~kappa:0.5 summary in
  Alcotest.(check bool) "has checks" true (List.length checks >= 4);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: measured %.3f vs expected %.3f" c.Summary.metric
           c.Summary.measured c.Summary.expected)
        true c.Summary.ok)
    checks

let test_summary_jsonl_file_roundtrip () =
  let lifetime, events = campaign_trace () in
  ignore lifetime;
  let path = Filename.temp_file "fortress-obs" ".jsonl" in
  let oc = open_out path in
  List.iter (fun (t, ev) -> output_string oc (Sink.line ~time:t ev ^ "\n")) events;
  close_out oc;
  let from_file = Summary.of_file path in
  let from_events = Summary.of_events events in
  Sys.remove path;
  Alcotest.(check int) "same totals" from_events.Summary.total from_file.Summary.total;
  Alcotest.(check int) "nothing malformed" 0 from_file.Summary.malformed;
  Alcotest.(check (list (pair string int)))
    "same label histogram" from_events.Summary.by_label from_file.Summary.by_label

let test_summary_malformed_lines () =
  let path = Filename.temp_file "fortress-obs" ".jsonl" in
  let oc = open_out path in
  output_string oc (Sink.line ~time:1.0 (Event.Rekey { nodes = 3 }) ^ "\n");
  output_string oc "this is not json\n\n";
  output_string oc (Sink.line ~time:2.0 (Event.Step { n = 1 }) ^ "\n");
  close_out oc;
  let s = Summary.of_file path in
  Sys.remove path;
  Alcotest.(check int) "two parsed" 2 s.Summary.total;
  Alcotest.(check int) "one malformed (blank skipped)" 1 s.Summary.malformed

let test_summary_fault_breakdown () =
  let events =
    [
      (1.0, Event.Fault { action = "drop"; target = "link 0->1"; detail = "" });
      (2.0, Event.Fault { action = "drop"; target = "link 1->0"; detail = "" });
      (3.0, Event.Fault { action = "crash"; target = "server-1"; detail = "restart at 9" });
      (4.0, Event.Rekey { nodes = 3 });
    ]
  in
  let s = Summary.of_events events in
  Alcotest.(check (list (pair string int)))
    "per-action counts, sorted" [ ("crash", 1); ("drop", 2) ] s.Summary.faults;
  Alcotest.(check (option int)) "fault label total" (Some 3)
    (List.assoc_opt "fault" s.Summary.by_label);
  let rendered = Summary.render s in
  Alcotest.(check bool) "render has fault section" true
    (contains ~needle:"injected faults by action" rendered)

let test_summary_rate_column () =
  let events = List.init 5 (fun i -> (float_of_int i *. 2.0, Event.Rekey { nodes = 1 })) in
  let rendered = Summary.render (Summary.of_events events) in
  Alcotest.(check bool) "per-vt column present" true (contains ~needle:"per vt" rendered);
  (* 5 events over a span of 8 vt *)
  Alcotest.(check bool) "rate rendered" true (contains ~needle:"0.625" rendered);
  (* a single-timestamp trace has no usable span *)
  let one = Summary.render (Summary.of_events [ (1.0, Event.Rekey { nodes = 1 }) ]) in
  Alcotest.(check bool) "degenerate span renders a dash" true (contains ~needle:"-" one)

let test_summary_no_faults_no_section () =
  let s = Summary.of_events [ (1.0, Event.Rekey { nodes = 3 }) ] in
  Alcotest.(check (list (pair string int))) "empty" [] s.Summary.faults;
  Alcotest.(check bool) "no fault section" false
    (contains ~needle:"injected faults" (Summary.render s))

(* ---- Validation sink threading ---- *)

let test_trial_events_through_validation () =
  let sink = Sink.create () in
  let trials = ref 0 in
  ignore
    (Sink.attach sink (fun ~time:_ ev ->
         match ev with Event.Trial _ -> incr trials | _ -> ()));
  let lines =
    Fortress_exp.Validation.run ~sink ~chi:512 ~omega:8 ~trials:5
      ~systems:[ Fortress_model.Systems.S1_PO ] ()
  in
  Alcotest.(check int) "one line" 1 (List.length lines);
  (* 5 step-level + 5 probe-level trials *)
  Alcotest.(check int) "trial events from both tiers" 10 !trials

(* ---- Causal ---- *)

module Causal = Fortress_obs.Causal
module Latency = Fortress_obs.Latency

let test_causal_id_base_and_parentage () =
  let ctx = Span.create ~now:(fun () -> 0.0) () in
  let c = Causal.create ~trace_id:3 ctx in
  Alcotest.(check int) "trace id" 3 (Causal.trace_id c);
  Alcotest.(check bool) "no ambient initially" true (Causal.ambient c = None);
  let root = Causal.span_of c ~attrs:[ ("node", "client") ] "client.request" in
  Alcotest.(check int) "id from trace-id block" ((3 * Causal.id_stride) + 1) (Span.id root);
  Alcotest.(check bool) "root has no parent" true (Span.parent_id root = None);
  Alcotest.(check (list (pair string string))) "attrs applied" [ ("node", "client") ]
    (Span.attrs root);
  Causal.with_ambient c root (fun () ->
      Alcotest.(check bool) "root ambient inside" true (Causal.ambient c = Some root);
      let child = Causal.span_of c "net.send" in
      Alcotest.(check (option int)) "child parents to ambient" (Some (Span.id root))
        (Span.parent_id child);
      (* explicit parent wins over the ambient one *)
      let other = Causal.span_of c ~parent:child "net.deliver" in
      Alcotest.(check (option int)) "explicit parent" (Some (Span.id child))
        (Span.parent_id other);
      Causal.finish c other;
      Causal.finish c child);
  Alcotest.(check bool) "ambient restored" true (Causal.ambient c = None);
  Causal.finish c root;
  Alcotest.(check bool) "root finished" true (Span.is_finished root)

let test_causal_with_span_nests_and_unwinds_on_raise () =
  let ctx = Span.create ~now:(fun () -> 0.0) () in
  let c = Causal.create ctx in
  Causal.with_span c "outer" (fun () ->
      let outer = Option.get (Causal.ambient c) in
      Causal.with_span c "inner" (fun () ->
          let inner = Option.get (Causal.ambient c) in
          Alcotest.(check (option int)) "inner under outer" (Some (Span.id outer))
            (Span.parent_id inner));
      Alcotest.(check bool) "outer ambient again" true (Causal.ambient c = Some outer));
  (try Causal.with_span c "raises" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "stack unwound after raise" true (Causal.ambient c = None)

let test_engine_causal_scope () =
  let e = Engine.create () in
  let spans = ref [] in
  ignore
    (Sink.attach (Engine.sink e) (fun ~time:_ ev ->
         match ev with
         | Event.Span_finished { name; _ } -> spans := name :: !spans
         | _ -> ()));
  (* without attach_causal every causal hook is an identity *)
  Engine.causal_scope e "invisible" (fun () -> ());
  Alcotest.(check (list string)) "no spans without causal" [] !spans;
  ignore (Engine.attach_causal ~trace_id:7 e);
  Engine.causal_scope e "defense.actuate" (fun () -> ());
  Alcotest.(check (list string)) "scope emits span" [ "defense.actuate" ] !spans

(* ---- Latency ---- *)

let fault action = Event.Fault { action; target = "srv"; detail = "" }
let alarm = Event.Note { label = "signal.alarm"; detail = "rekey-staleness: raw=9 in window 3" }
let directive = Event.Directive { step = 1; strategy = "defender:alarm-rekey"; detail = "" }

let test_latency_chain_extraction () =
  let events =
    [
      (5.0, fault "crash");
      (* opens detection *)
      (10.0, fault "stall");
      (* opens stall-rekey; detection already open *)
      (20.0, alarm);
      (* closes detection, opens reaction *)
      (30.0, directive);
      (* closes reaction *)
      (40.0, Event.Rekey { nodes = 3 });
      (* closes stall-rekey *)
      (50.0, fault "partition");
      (* opens detection, never answered: censored *)
    ]
  in
  let t = Latency.of_events events in
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9)))) "detection chain" [ (5.0, 20.0) ]
    (Latency.chains t Latency.Detection);
  Alcotest.(check (list (float 1e-9))) "reaction duration" [ 10.0 ]
    (Latency.durations t Latency.Reaction);
  Alcotest.(check (list (float 1e-9))) "stall-rekey duration" [ 30.0 ]
    (Latency.durations t Latency.Stall_rekey);
  Alcotest.(check int) "one censored detection" 1 (Latency.censored t Latency.Detection);
  Alcotest.(check int) "three closed chains" 3 (Latency.total t);
  match Latency.summary t Latency.Detection with
  | None -> Alcotest.fail "detection summary missing"
  | Some s ->
      Alcotest.(check int) "summary count" 1 s.Latency.s_count;
      Alcotest.(check (float 1e-9)) "summary p50" 15.0 s.Latency.s_p50

let test_latency_bookkeeping_never_opens () =
  let t =
    Latency.of_events
      [
        (1.0, fault "plan_installed");
        (2.0, fault "heal");
        (3.0, fault "stall_skip");
        (4.0, fault "resume");
        (5.0, fault "restart");
        (6.0, fault "plan_uninstalled");
      ]
  in
  Alcotest.(check int) "no chains closed" 0 (Latency.total t);
  Alcotest.(check int) "no detection censored" 0 (Latency.censored t Latency.Detection)

let test_latency_merge_order_and_empty_summary () =
  let a = Latency.of_events [ (1.0, fault "crash"); (3.0, alarm) ] in
  let b = Latency.of_events [ (10.0, fault "crash"); (14.0, alarm) ] in
  let m = Latency.merge [ a; b ] in
  Alcotest.(check (list (float 1e-9))) "durations concatenated in list order" [ 2.0; 4.0 ]
    (Latency.durations m Latency.Detection);
  Alcotest.(check bool) "empty kind summarises to None" true
    (Latency.summary Latency.empty Latency.Reaction = None)

let test_latency_trial_boundaries_reset () =
  (* a fault left open in trial 0 must not be closed by trial 1's alarm;
     it counts as censored at the boundary *)
  let events =
    [
      (5.0, fault "crash");
      (0.0, Event.Trial { index = 1; seed = 42; lifetime = Some 1.0 });
      (2.0, alarm);
    ]
  in
  let t = Latency.of_events events in
  Alcotest.(check int) "no closed chains across trials" 0 (Latency.total t);
  Alcotest.(check int) "open chain censored at boundary" 1
    (Latency.censored t Latency.Detection)

let prop_latency_reorder_invariant =
  (* extraction canonicalises each trial segment, so any permutation of
     the event list yields the same chains *)
  let gen_event =
    QCheck.Gen.(
      pair (float_bound_inclusive 100.0) (int_bound 5) >|= fun (time, k) ->
      ( time,
        match k with
        | 0 -> fault "crash"
        | 1 -> fault "stall"
        | 2 -> alarm
        | 3 -> directive
        | 4 -> Event.Rekey { nodes = 1 }
        | _ -> Event.Note { label = "noise"; detail = "" } ))
  in
  QCheck.Test.make ~count:100 ~name:"latency extraction is reorder-invariant"
    QCheck.(
      pair
        (make Gen.(list_size (int_range 0 60) gen_event))
        (make Gen.(int_bound 1000)))
    (fun (events, shuffle_seed) ->
      let st = Random.State.make [| shuffle_seed |] in
      let arr = Array.of_list events in
      for i = Array.length arr - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp
      done;
      let shuffled = Array.to_list arr in
      let canon t =
        List.map
          (fun k -> (Latency.chains t k, Latency.censored t k))
          Latency.kinds
      in
      canon (Latency.of_events events) = canon (Latency.of_events shuffled))

(* ---- Summary alarm section ---- *)

let test_summary_alarm_section () =
  let s =
    Summary.of_events
      [
        (3.0, Event.Note { label = "signal.alarm"; detail = "invalid-rate: raw=4 in window 0" });
        (7.0, alarm);
        (9.0, alarm);
        (1.0, Event.Note { label = "unrelated"; detail = "" });
      ]
  in
  Alcotest.(check (list (triple string int (float 1e-9)))) "per-detector counts"
    [ ("invalid-rate", 1, 3.0); ("rekey-staleness", 2, 7.0) ]
    s.Summary.alarms;
  let rendered = Summary.render s in
  Alcotest.(check bool) "render carries the section" true
    (contains ~needle:"defender signal alarms" rendered);
  Alcotest.(check bool) "detector named" true (contains ~needle:"rekey-staleness" rendered)

let test_summary_no_alarms_no_section () =
  let s = Summary.of_events [ (1.0, Event.Rekey { nodes = 1 }) ] in
  Alcotest.(check bool) "section absent" false
    (contains ~needle:"defender signal alarms" (Summary.render s))

(* ---- timeline CSV golden ---- *)

let test_timeline_csv_golden () =
  let tl, sink = watched_timeline ~width:100.0 () in
  Sink.emit sink ~time:1.0 (Event.Fault { action = "crash"; target = "s"; detail = "" });
  Sink.emit sink ~time:50.0 (Event.Invalid_observed { proxy = 0 });
  Sink.emit sink ~time:101.0 (Event.Rekey { nodes = 1 });
  Sink.emit sink ~time:150.0 (Event.Probe
    { kind = Event.Direct; tier = Event.Proxy_tier; target = 0; outcome = Event.Crashed });
  Timeline.finish tl;
  let sg = Signal.of_timeline tl in
  let csv = Fortress_util.Table.to_csv (Signal.table ~timeline:tl sg) in
  let golden =
    "win,vt,invalid,blocked,crash,stale,alarm,faults\n\
     0,\"[0, 100)\",0.01,0,0.01,0,-,crash:1\n\
     1,\"[100, 200)\",0,0,0.01,0,-,-\n"
  in
  Alcotest.(check string) "timeline --csv golden" golden csv

let () =
  Alcotest.run "fortress_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "integers compact" `Quick test_json_integers_compact;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "nested array depth" `Quick test_json_nested_depth;
          Alcotest.test_case "error offsets" `Quick test_json_error_offsets;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "event",
        [
          Alcotest.test_case "json round-trip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "labels and verbosity" `Quick test_event_labels_and_verbosity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_and_gauges;
          Alcotest.test_case "histogram, snapshot, reset" `Quick
            test_metrics_histogram_snapshot_reset;
          Alcotest.test_case "find_gauge, find_histogram, quantile" `Quick
            test_metrics_find_gauge_and_histogram;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "window boundaries" `Quick test_timeline_window_boundaries;
          Alcotest.test_case "ring eviction and late drop" `Quick
            test_timeline_ring_eviction_and_late_drop;
          Alcotest.test_case "gap compression" `Quick test_timeline_gap_compression;
          Alcotest.test_case "close hooks fire once in order" `Quick
            test_timeline_hooks_fire_once_in_order;
          Alcotest.test_case "registry attribution" `Quick test_timeline_registry_attribution;
          Alcotest.test_case "ignores signal alarms" `Quick test_timeline_ignores_signal_alarms;
          QCheck_alcotest.to_alcotest prop_timeline_counts_match_counting;
        ] );
      ( "signal",
        [
          Alcotest.test_case "staleness CUSUM alarm" `Quick test_signal_staleness_cusum_alarm;
          Alcotest.test_case "rate burst alarms, steady silent" `Quick
            test_signal_rate_burst_alarm_and_steady_silence;
          Alcotest.test_case "streaming equals batch" `Quick test_signal_streaming_equals_batch;
          Alcotest.test_case "alarms emit without feedback" `Quick
            test_signal_alarms_emit_without_feedback;
          Alcotest.test_case "table renders fault alignment" `Quick test_signal_table_renders;
          Alcotest.test_case "engine attach_telemetry" `Quick test_engine_attach_telemetry;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "exposition format" `Quick test_openmetrics_exposition;
          Alcotest.test_case "adversarial labels" `Quick
            test_openmetrics_adversarial_labels;
          Alcotest.test_case "name sanitization" `Quick test_openmetrics_sanitize_names;
        ] );
      ( "span",
        [ Alcotest.test_case "lifecycle" `Quick test_span_lifecycle ] );
      ( "sink",
        [
          Alcotest.test_case "subscribers and detach" `Quick test_sink_subscribers_and_detach;
          Alcotest.test_case "jsonl round-trip" `Quick test_sink_jsonl_roundtrip;
          Alcotest.test_case "counting and memory" `Quick test_sink_counting_and_memory;
          Alcotest.test_case "line deterministic round-trip" `Quick
            test_sink_line_deterministic_roundtrip;
          Alcotest.test_case "file flushes and closes" `Quick test_sink_file_flushes_and_closes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "emit feeds metrics and trace" `Quick
            test_engine_emit_feeds_metrics_and_trace;
          Alcotest.test_case "spans on virtual time" `Quick test_engine_spans_use_virtual_time;
        ] );
      ( "summary",
        [
          Alcotest.test_case "campaign trace consistent with laws" `Quick
            test_summary_of_campaign_consistent;
          Alcotest.test_case "jsonl file round-trip" `Quick test_summary_jsonl_file_roundtrip;
          Alcotest.test_case "malformed lines" `Quick test_summary_malformed_lines;
          Alcotest.test_case "fault breakdown" `Quick test_summary_fault_breakdown;
          Alcotest.test_case "per-label rate column" `Quick test_summary_rate_column;
          Alcotest.test_case "no faults, no section" `Quick test_summary_no_faults_no_section;
        ] );
      ( "validation",
        [
          Alcotest.test_case "trial events through sink" `Quick
            test_trial_events_through_validation;
        ] );
      ( "causal",
        [
          Alcotest.test_case "id base and parentage" `Quick
            test_causal_id_base_and_parentage;
          Alcotest.test_case "with_span nests and unwinds" `Quick
            test_causal_with_span_nests_and_unwinds_on_raise;
          Alcotest.test_case "engine causal_scope" `Quick test_engine_causal_scope;
        ] );
      ( "latency",
        [
          Alcotest.test_case "chain extraction" `Quick test_latency_chain_extraction;
          Alcotest.test_case "bookkeeping never opens" `Quick
            test_latency_bookkeeping_never_opens;
          Alcotest.test_case "merge order and empty summary" `Quick
            test_latency_merge_order_and_empty_summary;
          Alcotest.test_case "trial boundaries reset" `Quick
            test_latency_trial_boundaries_reset;
          QCheck_alcotest.to_alcotest prop_latency_reorder_invariant;
        ] );
      ( "alarm summary",
        [
          Alcotest.test_case "per-detector section" `Quick test_summary_alarm_section;
          Alcotest.test_case "no alarms, no section" `Quick test_summary_no_alarms_no_section;
        ] );
      ( "timeline golden",
        [ Alcotest.test_case "signal table csv" `Quick test_timeline_csv_golden ] );
    ]
