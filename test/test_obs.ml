module Json = Fortress_obs.Json
module Event = Fortress_obs.Event
module Metrics = Fortress_obs.Metrics
module Span = Fortress_obs.Span
module Sink = Fortress_obs.Sink
module Summary = Fortress_obs.Summary
module Engine = Fortress_sim.Engine

(* ---- Json ---- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("i", Json.Num 42.0);
        ("f", Json.Num 1.5);
        ("s", Json.Str "a \"quoted\"\nline\twith\\escapes");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Num 1.0; Json.Str "x"; Json.Bool false ]);
        ("o", Json.Obj [ ("nested", Json.Num (-3.0)) ]);
      ]
  in
  match Json.parse (Json.to_string doc) with
  | Ok doc' -> Alcotest.(check bool) "round-trips" true (doc = doc')
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_integers_compact () =
  Alcotest.(check string) "integral floats have no point" "{\"t\":300}"
    (Json.to_string (Json.Obj [ ("t", Json.Num 300.0) ]));
  Alcotest.(check string) "non-integral keeps fraction" "0.5" (Json.to_string (Json.Num 0.5))

let test_json_parse_errors () =
  let bad s =
    match Json.parse s with Ok _ -> Alcotest.fail ("accepted: " ^ s) | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "\"unterminated"

let parse_str s =
  match Json.parse s with
  | Ok (Json.Str v) -> v
  | Ok _ -> Alcotest.failf "parsed %s to a non-string" s
  | Error e -> Alcotest.failf "rejected %s: %s" s e

let test_json_unicode_escapes () =
  Alcotest.(check string) "BMP escape" "A" (parse_str {|"\u0041"|});
  Alcotest.(check string) "non-ASCII BMP escape" "\xc3\xa9" (parse_str {|"\u00e9"|});
  Alcotest.(check string) "case-insensitive hex" "\xc3\xa9" (parse_str {|"\u00E9"|});
  Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" (parse_str {|"\ud83d\ude00"|});
  (* a lone high surrogate is not a scalar value: replacement character *)
  Alcotest.(check string) "lone high surrogate" "\xef\xbf\xbdx" (parse_str {|"\ud800x"|});
  Alcotest.(check string) "unpaired high surrogate before plain char" "\xef\xbf\xbdA"
    (parse_str {|"\ud83dA"|});
  (* a high surrogate followed by a \u escape that is not a low surrogate *)
  (match Json.parse "\"\\ud83d\\u0041\"" with
  | Ok _ -> Alcotest.fail "accepted a malformed surrogate pair"
  | Error e ->
      Alcotest.(check bool) "low surrogate error" true
        (String.length e > 0 && String.ends_with ~suffix:"invalid low surrogate" e));
  (* non-hex digits are a parse error, not an uncaught exception *)
  match Json.parse {|"ab\uZZZZ"|} with
  | Ok _ -> Alcotest.fail "accepted non-hex \\u escape"
  | Error e -> Alcotest.(check string) "offset names offending char" "at 5: invalid \\u escape" e

let test_json_nested_depth () =
  let depth = 256 in
  let s =
    String.concat "" (List.init depth (fun _ -> "["))
    ^ "1"
    ^ String.concat "" (List.init depth (fun _ -> "]"))
  in
  match Json.parse s with
  | Error e -> Alcotest.failf "depth %d rejected: %s" depth e
  | Ok doc ->
      let rec unwrap n = function
        | Json.List [ inner ] -> unwrap (n + 1) inner
        | Json.Num 1.0 -> n
        | _ -> Alcotest.fail "unexpected shape"
      in
      Alcotest.(check int) "full depth preserved" depth (unwrap 0 doc);
      Alcotest.(check string) "re-emits identically" s (Json.to_string doc)

let test_json_error_offsets () =
  let offset_of s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted: %s" s
    | Error e -> (
        (* errors are "at <offset>: <message>" *)
        match String.index_opt e ':' with
        | Some i -> int_of_string (String.sub e 3 (i - 3))
        | None -> Alcotest.failf "unparseable error: %s" e)
  in
  Alcotest.(check int) "missing array element" 3 (offset_of "[1,]");
  Alcotest.(check int) "missing object value" 5 (offset_of {|{"a":}|});
  Alcotest.(check int) "bare comma at start" 0 (offset_of ",");
  Alcotest.(check int) "trailing garbage" 7 (offset_of {|{"a":1}x|});
  Alcotest.(check int) "unknown escape" 3 (offset_of {|"a\q"|});
  Alcotest.(check int) "truncated input" 1 (offset_of "[")

let test_json_accessors () =
  match Json.parse "{\"a\": 7, \"b\": \"x\", \"c\": [1,2]}" with
  | Error e -> Alcotest.fail e
  | Ok doc ->
      Alcotest.(check (option int)) "int member" (Some 7)
        (Option.bind (Json.member "a" doc) Json.int);
      Alcotest.(check (option string)) "str member" (Some "x")
        (Option.bind (Json.member "b" doc) Json.str);
      Alcotest.(check int) "list member" 2
        (List.length (Option.get (Option.bind (Json.member "c" doc) Json.list)));
      Alcotest.(check (option int)) "missing member" None
        (Option.bind (Json.member "zzz" doc) Json.int)

(* ---- Event ---- *)

let all_events =
  [
    Event.Probe
      { kind = Event.Direct; tier = Event.Proxy_tier; target = 2; outcome = Event.Crashed };
    Event.Probe
      { kind = Event.Indirect; tier = Event.Server_tier; target = 0; outcome = Event.Intruded };
    Event.Probe
      { kind = Event.Launchpad; tier = Event.Server_tier; target = 1; outcome = Event.Blocked };
    Event.Compromise { tier = Event.Proxy_tier; index = 1 };
    Event.Rekey { nodes = 6 };
    Event.Recover { nodes = 4 };
    Event.Step { n = 17 };
    Event.Invalid_observed { proxy = 0 };
    Event.Source_blocked { proxy = 2; source = 31 };
    Event.Source_rotated { burned = 5 };
    Event.Request_submitted { id = "r-1" };
    Event.Request_completed { id = "r-1"; accepted = true };
    Event.Reply_rejected { id = "r-2" };
    Event.Msg_delivered { src = 3; dst = 9 };
    Event.Msg_dropped { src = 3; dst = 9; reason = "partition" };
    Event.Failover { proto = "pb"; replica = 1; view = 4 };
    Event.Repl { proto = "smr"; kind = "restore"; detail = "replica 2 restored" };
    Event.Trial { index = 12; seed = 42; lifetime = Some 33.0 };
    Event.Trial { index = 13; seed = 42; lifetime = None };
    Event.Span_finished
      {
        id = 3;
        parent = Some 1;
        name = "client.request";
        start_time = 10.0;
        duration = 2.5;
        attrs = [ ("id", "r-1") ];
      };
    Event.Note { label = "daemon"; detail = "intrusion: correct key probed" };
  ]

let test_event_json_roundtrip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trips %s" (Event.label ev))
            true (ev = ev')
      | Error e -> Alcotest.fail (Event.label ev ^ ": " ^ e))
    all_events

let test_event_labels_and_verbosity () =
  Alcotest.(check string) "probe label" "probe"
    (Event.label (List.hd all_events));
  Alcotest.(check string) "note uses embedded label" "daemon"
    (Event.label (Event.Note { label = "daemon"; detail = "d" }));
  (* high-rate events must not take trace-ring slots *)
  List.iter
    (fun ev ->
      Alcotest.(check bool)
        (Event.label ev ^ " is debug")
        true
        (Event.verbosity ev = `Debug))
    [
      List.hd all_events;
      Event.Msg_delivered { src = 0; dst = 1 };
      Event.Request_submitted { id = "x" };
      Event.Invalid_observed { proxy = 0 };
    ];
  List.iter
    (fun ev ->
      Alcotest.(check bool) (Event.label ev ^ " is info") true (Event.verbosity ev = `Info))
    [ Event.Rekey { nodes = 3 }; Event.Compromise { tier = Event.Server_tier; index = 0 } ]

(* ---- Metrics ---- *)

let test_metrics_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "events.probe" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.(check int) "same handle on re-registration" 5
    (Metrics.counter_value (Metrics.counter m "events.probe"));
  Alcotest.(check int) "find_counter" 5 (Metrics.find_counter m "events.probe");
  Alcotest.(check int) "absent counter reads 0" 0 (Metrics.find_counter m "nope");
  let g = Metrics.gauge m "clock" in
  Metrics.set g 12.5;
  Alcotest.(check (float 0.0)) "gauge" 12.5 (Metrics.gauge_value g);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: \"events.probe\" is already registered as a counter")
    (fun () -> ignore (Metrics.gauge m "events.probe"))

let test_metrics_histogram_snapshot_reset () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~lo:0.0 ~hi:10.0 ~bins:5 "lifetimes" in
  List.iter (Metrics.observe h) [ 1.0; 3.0; 7.0; 42.0 ];
  let c = Metrics.counter m "n" in
  Metrics.incr c;
  (match Metrics.snapshot m with
  | [ ("lifetimes", Metrics.Histogram { count; overflow; _ }); ("n", Metrics.Counter 1) ] ->
      Alcotest.(check int) "histogram count" 4 count;
      Alcotest.(check int) "overflow" 1 overflow
  | _ -> Alcotest.fail "unexpected snapshot shape");
  Metrics.reset m;
  Alcotest.(check int) "counter zeroed, handle survives" 0 (Metrics.counter_value c);
  (match Metrics.snapshot m with
  | [ ("lifetimes", Metrics.Histogram { count; _ }); ("n", Metrics.Counter 0) ] ->
      Alcotest.(check int) "histogram emptied" 0 count
  | _ -> Alcotest.fail "registrations must survive reset");
  Alcotest.(check bool) "renders" true (String.length (Metrics.render m) > 0)

(* ---- Span ---- *)

let test_span_lifecycle () =
  let clock = ref 0.0 in
  let ctx = Span.create ~now:(fun () -> !clock) () in
  let finished = ref [] in
  Span.set_on_finish ctx (fun ev -> finished := ev :: !finished);
  let root = Span.start ctx "step" in
  clock := 5.0;
  let child = Span.start ctx ~parent:root "request" in
  Span.set_attr child "id" "r-9";
  Alcotest.(check int) "two active" 2 (Span.active_count ctx);
  clock := 8.0;
  Span.finish ctx child;
  Span.finish ctx child;
  (* idempotent *)
  clock := 10.0;
  Span.finish ctx root;
  Alcotest.(check int) "none active" 0 (Span.active_count ctx);
  Alcotest.(check int) "two finished" 2 (Span.finished_count ctx);
  match List.rev !finished with
  | [
   Event.Span_finished { name; start_time; duration; parent; attrs; _ };
   Event.Span_finished { duration = root_duration; _ };
  ] ->
      Alcotest.(check string) "child name" "request" name;
      Alcotest.(check (float 0.0)) "child start" 5.0 start_time;
      Alcotest.(check (float 0.0)) "child duration" 3.0 duration;
      Alcotest.(check (option int)) "parent link" (Some (Span.id root)) parent;
      Alcotest.(check (list (pair string string))) "attrs" [ ("id", "r-9") ] attrs;
      Alcotest.(check (float 0.0)) "root duration" 10.0 root_duration
  | _ -> Alcotest.fail "expected exactly two Span_finished events"

(* ---- Sink ---- *)

let test_sink_subscribers_and_detach () =
  let sink = Sink.create () in
  let a = ref 0 and b = ref 0 in
  let ha = Sink.attach sink (fun ~time:_ _ -> incr a) in
  ignore (Sink.attach sink (fun ~time:_ _ -> incr b));
  Sink.emit sink ~time:1.0 (Event.Rekey { nodes = 3 });
  Sink.detach sink ha;
  Sink.detach sink ha;
  (* double detach is a no-op *)
  Sink.emit sink ~time:2.0 (Event.Rekey { nodes = 3 });
  Alcotest.(check int) "detached saw one" 1 !a;
  Alcotest.(check int) "live saw both" 2 !b;
  Alcotest.(check int) "emitted total" 2 (Sink.emitted sink)

let test_sink_jsonl_roundtrip () =
  let lines = ref [] in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Sink.jsonl (fun l -> lines := l :: !lines)));
  List.iteri (fun i ev -> Sink.emit sink ~time:(float_of_int i) ev) all_events;
  let parsed = List.rev_map Sink.parse_line !lines in
  Alcotest.(check int) "all lines parse" (List.length all_events) (List.length parsed);
  List.iteri
    (fun i -> function
      | Ok (t, ev) ->
          Alcotest.(check (float 0.0)) "time preserved" (float_of_int i) t;
          Alcotest.(check bool)
            (Event.label ev ^ " round-trips")
            true
            (ev = List.nth all_events i)
      | Error e -> Alcotest.fail e)
    parsed

let test_sink_counting_and_memory () =
  let m = Metrics.create () in
  let sink = Sink.create () in
  ignore (Sink.attach sink (Sink.counting m));
  let mem, recent = Sink.memory ~capacity:2 () in
  ignore (Sink.attach sink mem);
  Sink.emit sink ~time:0.0
    (Event.Probe
       { kind = Event.Direct; tier = Event.Proxy_tier; target = 0; outcome = Event.Crashed });
  Sink.emit sink ~time:1.0
    (Event.Probe
       { kind = Event.Indirect; tier = Event.Server_tier; target = 0; outcome = Event.Intruded });
  Sink.emit sink ~time:2.0 (Event.Rekey { nodes = 6 });
  Alcotest.(check int) "probe label counted" 2 (Metrics.find_counter m "events.probe");
  Alcotest.(check int) "kind counted" 1 (Metrics.find_counter m "probe.direct");
  Alcotest.(check int) "outcome counted" 1 (Metrics.find_counter m "probe.intrusion");
  Alcotest.(check int) "rekey counted" 1 (Metrics.find_counter m "events.rekey");
  match recent () with
  | [ (1.0, Event.Probe _); (2.0, Event.Rekey _) ] -> ()
  | l -> Alcotest.fail (Printf.sprintf "memory ring kept %d unexpected events" (List.length l))

let test_sink_line_deterministic_roundtrip () =
  (* Renders depend only on the event, never on hashing or environment:
     line -> parse_line -> line must be byte-identical for every event
     shape, which is what makes trace digests stable across runs and
     OCaml versions. *)
  List.iteri
    (fun i ev ->
      let time = 0.5 +. float_of_int i in
      let rendered = Sink.line ~time ev in
      match Sink.parse_line rendered with
      | Error e -> Alcotest.failf "%s does not parse back: %s" (Event.label ev) e
      | Ok (time', ev') ->
          Alcotest.(check string)
            (Event.label ev ^ " re-renders byte-identically")
            rendered
            (Sink.line ~time:time' ev'))
    all_events

let test_sink_file_flushes_and_closes () =
  let path = Filename.temp_file "fortress-sink" ".jsonl" in
  let sub, close = Sink.file path in
  let sink = Sink.create () in
  ignore (Sink.attach sink sub);
  Sink.emit sink ~time:1.0 (Event.Rekey { nodes = 3 });
  Sink.emit sink ~time:2.0 (Event.Step { n = 1 });
  close ();
  close ();
  (* idempotent *)
  (* writes after close are dropped, not crashes on a dead descriptor *)
  Sink.emit sink ~time:3.0 (Event.Step { n = 2 });
  let s = Summary.of_file path in
  Sys.remove path;
  Alcotest.(check int) "both pre-close events on disk" 2 s.Summary.total;
  Alcotest.(check int) "nothing malformed" 0 s.Summary.malformed

(* ---- Engine integration ---- *)

let test_engine_emit_feeds_metrics_and_trace () =
  let e = Engine.create () in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         Engine.emit e (Event.Rekey { nodes = 6 });
         Engine.emit e (Event.Msg_delivered { src = 0; dst = 1 })));
  Engine.run e;
  Alcotest.(check int) "metrics counted both" 1
    (Fortress_obs.Metrics.find_counter (Engine.metrics e) "events.rekey");
  Alcotest.(check int) "debug event counted too" 1
    (Fortress_obs.Metrics.find_counter (Engine.metrics e) "events.msg_delivered");
  (* only the `Info event takes a ring slot; both bump trace counters *)
  Alcotest.(check int) "one ring entry" 1 (Fortress_sim.Trace.length (Engine.trace e));
  Alcotest.(check int) "trace counter for debug event" 1
    (Fortress_sim.Trace.counter (Engine.trace e) "msg_delivered")

let test_engine_spans_use_virtual_time () =
  let e = Engine.create () in
  let mem, recent = Sink.memory () in
  ignore (Sink.attach (Engine.sink e) mem);
  let sp = ref None in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> sp := Some (Engine.span e "phase")));
  ignore (Engine.schedule e ~delay:7.0 (fun () -> Engine.finish_span e (Option.get !sp)));
  Engine.run e;
  Alcotest.(check int) "span event counted" 1
    (Fortress_obs.Metrics.find_counter (Engine.metrics e) "events.span");
  match recent () with
  | [ (7.0, Event.Span_finished { name; start_time; duration; _ }) ] ->
      Alcotest.(check string) "name" "phase" name;
      Alcotest.(check (float 0.0)) "started at virtual t=2" 2.0 start_time;
      Alcotest.(check (float 0.0)) "virtual duration" 5.0 duration
  | _ -> Alcotest.fail "expected one Span_finished at t=7"

(* ---- Summary ---- *)

let campaign_trace () =
  let sink = Sink.create () in
  let mem, recent = Sink.memory ~capacity:200_000 () in
  ignore (Sink.attach sink mem);
  let lifetime =
    Fortress_exp.Validation.campaign_lifetime ~sink ~chi:256 ~omega:8 ~kappa:0.5 ~seed:3 ()
  in
  (lifetime, recent ())

let test_summary_of_campaign_consistent () =
  let lifetime, events = campaign_trace () in
  Alcotest.(check bool) "campaign ended" true (lifetime <> None);
  let summary = Summary.of_events events in
  Alcotest.(check bool) "saw steps" true (summary.Summary.steps > 0);
  Alcotest.(check bool) "saw probes" true (summary.Summary.probes_direct > 0);
  Alcotest.(check bool) "renders" true (String.length (Summary.render summary) > 0);
  let checks = Summary.consistency ~omega:8 ~chi:256 ~kappa:0.5 summary in
  Alcotest.(check bool) "has checks" true (List.length checks >= 4);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: measured %.3f vs expected %.3f" c.Summary.metric
           c.Summary.measured c.Summary.expected)
        true c.Summary.ok)
    checks

let test_summary_jsonl_file_roundtrip () =
  let lifetime, events = campaign_trace () in
  ignore lifetime;
  let path = Filename.temp_file "fortress-obs" ".jsonl" in
  let oc = open_out path in
  List.iter (fun (t, ev) -> output_string oc (Sink.line ~time:t ev ^ "\n")) events;
  close_out oc;
  let from_file = Summary.of_file path in
  let from_events = Summary.of_events events in
  Sys.remove path;
  Alcotest.(check int) "same totals" from_events.Summary.total from_file.Summary.total;
  Alcotest.(check int) "nothing malformed" 0 from_file.Summary.malformed;
  Alcotest.(check (list (pair string int)))
    "same label histogram" from_events.Summary.by_label from_file.Summary.by_label

let test_summary_malformed_lines () =
  let path = Filename.temp_file "fortress-obs" ".jsonl" in
  let oc = open_out path in
  output_string oc (Sink.line ~time:1.0 (Event.Rekey { nodes = 3 }) ^ "\n");
  output_string oc "this is not json\n\n";
  output_string oc (Sink.line ~time:2.0 (Event.Step { n = 1 }) ^ "\n");
  close_out oc;
  let s = Summary.of_file path in
  Sys.remove path;
  Alcotest.(check int) "two parsed" 2 s.Summary.total;
  Alcotest.(check int) "one malformed (blank skipped)" 1 s.Summary.malformed

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_summary_fault_breakdown () =
  let events =
    [
      (1.0, Event.Fault { action = "drop"; target = "link 0->1"; detail = "" });
      (2.0, Event.Fault { action = "drop"; target = "link 1->0"; detail = "" });
      (3.0, Event.Fault { action = "crash"; target = "server-1"; detail = "restart at 9" });
      (4.0, Event.Rekey { nodes = 3 });
    ]
  in
  let s = Summary.of_events events in
  Alcotest.(check (list (pair string int)))
    "per-action counts, sorted" [ ("crash", 1); ("drop", 2) ] s.Summary.faults;
  Alcotest.(check (option int)) "fault label total" (Some 3)
    (List.assoc_opt "fault" s.Summary.by_label);
  let rendered = Summary.render s in
  Alcotest.(check bool) "render has fault section" true
    (contains ~needle:"injected faults by action" rendered)

let test_summary_no_faults_no_section () =
  let s = Summary.of_events [ (1.0, Event.Rekey { nodes = 3 }) ] in
  Alcotest.(check (list (pair string int))) "empty" [] s.Summary.faults;
  Alcotest.(check bool) "no fault section" false
    (contains ~needle:"injected faults" (Summary.render s))

(* ---- Validation sink threading ---- *)

let test_trial_events_through_validation () =
  let sink = Sink.create () in
  let trials = ref 0 in
  ignore
    (Sink.attach sink (fun ~time:_ ev ->
         match ev with Event.Trial _ -> incr trials | _ -> ()));
  let lines =
    Fortress_exp.Validation.run ~sink ~chi:512 ~omega:8 ~trials:5
      ~systems:[ Fortress_model.Systems.S1_PO ] ()
  in
  Alcotest.(check int) "one line" 1 (List.length lines);
  (* 5 step-level + 5 probe-level trials *)
  Alcotest.(check int) "trial events from both tiers" 10 !trials

let () =
  Alcotest.run "fortress_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "integers compact" `Quick test_json_integers_compact;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "nested array depth" `Quick test_json_nested_depth;
          Alcotest.test_case "error offsets" `Quick test_json_error_offsets;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "event",
        [
          Alcotest.test_case "json round-trip" `Quick test_event_json_roundtrip;
          Alcotest.test_case "labels and verbosity" `Quick test_event_labels_and_verbosity;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick test_metrics_counters_and_gauges;
          Alcotest.test_case "histogram, snapshot, reset" `Quick
            test_metrics_histogram_snapshot_reset;
        ] );
      ( "span",
        [ Alcotest.test_case "lifecycle" `Quick test_span_lifecycle ] );
      ( "sink",
        [
          Alcotest.test_case "subscribers and detach" `Quick test_sink_subscribers_and_detach;
          Alcotest.test_case "jsonl round-trip" `Quick test_sink_jsonl_roundtrip;
          Alcotest.test_case "counting and memory" `Quick test_sink_counting_and_memory;
          Alcotest.test_case "line deterministic round-trip" `Quick
            test_sink_line_deterministic_roundtrip;
          Alcotest.test_case "file flushes and closes" `Quick test_sink_file_flushes_and_closes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "emit feeds metrics and trace" `Quick
            test_engine_emit_feeds_metrics_and_trace;
          Alcotest.test_case "spans on virtual time" `Quick test_engine_spans_use_virtual_time;
        ] );
      ( "summary",
        [
          Alcotest.test_case "campaign trace consistent with laws" `Quick
            test_summary_of_campaign_consistent;
          Alcotest.test_case "jsonl file round-trip" `Quick test_summary_jsonl_file_roundtrip;
          Alcotest.test_case "malformed lines" `Quick test_summary_malformed_lines;
          Alcotest.test_case "fault breakdown" `Quick test_summary_fault_breakdown;
          Alcotest.test_case "no faults, no section" `Quick test_summary_no_faults_no_section;
        ] );
      ( "validation",
        [
          Alcotest.test_case "trial events through sink" `Quick
            test_trial_events_through_validation;
        ] );
    ]
