open Fortress_exp
module Systems = Fortress_model.Systems
module Table = Fortress_util.Table

(* ---- Sweep ---- *)

let test_log_spaced () =
  let grid = Sweep.log_spaced ~lo:1.0 ~hi:100.0 ~points:3 in
  match grid with
  | [ a; b; c ] ->
      Alcotest.(check (float 1e-9)) "lo" 1.0 a;
      Alcotest.(check (float 1e-6)) "mid" 10.0 b;
      Alcotest.(check (float 1e-6)) "hi" 100.0 c
  | _ -> Alcotest.fail "expected 3 points"

let test_log_spaced_validation () =
  Alcotest.check_raises "bad range" (Invalid_argument "Sweep.log_spaced: need 0 < lo < hi")
    (fun () -> ignore (Sweep.log_spaced ~lo:1.0 ~hi:0.5 ~points:3));
  Alcotest.check_raises "too few points"
    (Invalid_argument "Sweep.log_spaced: need at least 2 points") (fun () ->
      ignore (Sweep.log_spaced ~lo:1.0 ~hi:2.0 ~points:1))

let test_alpha_grid_covers_paper_range () =
  let grid = Sweep.alpha_grid () in
  Alcotest.(check (float 1e-9)) "starts at 1e-5" 1e-5 (List.hd grid);
  Alcotest.(check (float 1e-9)) "ends at 1e-2" 1e-2 (List.nth grid (List.length grid - 1))

let test_paper_kappas () =
  Alcotest.(check int) "seven values" 7 (List.length Sweep.paper_kappas);
  Alcotest.(check bool) "includes 0 and 1" true
    (List.mem 0.0 Sweep.paper_kappas && List.mem 1.0 Sweep.paper_kappas)

(* ---- Figure 1 ---- *)

let test_figure1_rows_shape () =
  let rows = Figures.figure1_rows ~points:5 () in
  Alcotest.(check int) "five rows" 5 (List.length rows);
  List.iter
    (fun r ->
      let open Figures in
      Alcotest.(check bool) "all lifetimes positive" true
        (r.s0_so > 0.0 && r.s1_so > 0.0 && r.s1_po > 0.0 && r.s2_po > 0.0 && r.s0_po > 0.0))
    rows

let test_figure1_trends_in_every_row () =
  List.iter
    (fun r ->
      let open Figures in
      Alcotest.(check bool) "S1SO > S0SO" true (r.s1_so > r.s0_so);
      Alcotest.(check bool) "S1PO > S1SO" true (r.s1_po > r.s1_so);
      Alcotest.(check bool) "S2PO > S1PO (kappa 0.5)" true (r.s2_po > r.s1_po);
      Alcotest.(check bool) "S0PO > S2PO" true (r.s0_po > r.s2_po))
    (Figures.figure1_rows ~points:9 ())

let test_figure1_table_renders () =
  let t = Figures.figure1_table ~points:4 () in
  Alcotest.(check int) "rows" 4 (Table.row_count t);
  Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0)

let test_figure1_table_with_mc () =
  let t = Figures.figure1_table ~points:2 ~mc_trials:50 () in
  Alcotest.(check int) "rows" 2 (Table.row_count t)

(* ---- Figure 2 ---- *)

let test_figure2_rows_shape () =
  let rows = Figures.figure2_rows ~points:4 () in
  Alcotest.(check int) "four alphas" 4 (List.length rows);
  List.iter
    (fun r -> Alcotest.(check int) "seven kappas" 7 (List.length r.Figures.by_kappa))
    rows

let test_figure2_monotone_in_kappa () =
  List.iter
    (fun r ->
      let els = List.map snd r.Figures.by_kappa in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a >= b && decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "EL falls as kappa grows" true (decreasing els))
    (Figures.figure2_rows ~points:5 ())

let test_figure2_kappa_zero_dwarfs_the_rest () =
  (* at kappa = 0 only the launch-pad (O(alpha^2)) and all-proxies
     (O(alpha^3)) channels remain, so the lifetime gains a factor of about
     kappa / (np alpha / 2) — over an order of magnitude across the range *)
  let rows = Figures.figure2_rows ~points:3 ~kappas:[ 0.0; 0.5 ] () in
  List.iter
    (fun r ->
      match r.Figures.by_kappa with
      | [ (_, at0); (_, at_half) ] ->
          Alcotest.(check bool) "kappa 0 is an order of magnitude better" true
            (at0 > 10.0 *. at_half)
      | _ -> Alcotest.fail "two kappas expected")
    rows

(* ---- Ordering ---- *)

let test_ordering_holds () =
  let r = Figures.ordering ~points:7 () in
  Alcotest.(check bool) "S0PO beats S2PO" true r.Figures.s0po_beats_s2po;
  Alcotest.(check bool) "S2PO beats S1PO at 0.5" true r.Figures.s2po_beats_s1po_at_low_kappa;
  Alcotest.(check bool) "S1PO beats S1SO" true r.Figures.s1po_beats_s1so;
  Alcotest.(check bool) "S1SO beats S0SO" true r.Figures.s1so_beats_s0so;
  Alcotest.(check int) "crossovers per alpha" 7 (List.length r.Figures.kappa_crossover)

let test_kappa_crossover_properties () =
  (* the crossover exists strictly below 1 and approaches 1 as alpha -> 0 *)
  let at_large = Figures.kappa_crossover_at ~alpha:0.01 in
  let at_small = Figures.kappa_crossover_at ~alpha:1e-4 in
  Alcotest.(check bool) "below 1 at alpha=0.01" true (at_large < 1.0);
  Alcotest.(check bool) "crossover grows as alpha shrinks" true (at_small > at_large);
  (* at the boundary S2PO and S1PO lifetimes agree *)
  let k = at_large in
  let s2 = Systems.s2_po ~alpha:0.01 ~kappa:k () in
  let s1 = Systems.s1_po ~alpha:0.01 in
  Alcotest.(check bool) "boundary is a tie" true (Float.abs (s2 -. s1) /. s1 < 1e-3)

(* ---- Ablations ---- *)

let test_ablation_np_monotone () =
  let t = Ablations.proxy_count_table ~points:3 () in
  Alcotest.(check int) "rows" 3 (Table.row_count t)

let test_ablation_np_values_monotone () =
  (* the direction depends on the launch-pad discipline: with Next_step
     (launch pads neutralised by the rekey boundary) extra proxies only
     shrink the all-proxies-fall channel, so EL weakly increases; with
     Within_step each extra proxy is an extra O(alpha^2) launch-pad channel
     at fixed per-proxy attack budget, so EL weakly DECREASES — more
     fortification is more attack surface. Ablation A1 exists to surface
     exactly this trade-off. *)
  List.iter
    (fun alpha ->
      let prev_next = ref 0.0 in
      List.iter
        (fun np ->
          let next = Systems.s2_po ~launchpad:Systems.Next_step ~np ~alpha ~kappa:0.5 () in
          Alcotest.(check bool) "next-step: weakly increasing in np" true
            (next >= !prev_next -. 1e-9);
          prev_next := next)
        [ 1; 2; 3; 4; 5 ];
      (* within-step is non-monotone with a peak at np = 3 (for alpha <
         1/2): up to there, shrinking the all-proxies-fall channel
         dominates; beyond it, every extra proxy is just extra launch-pad
         surface. The paper's choice np = 3 is optimal under this
         discipline. *)
      let within np = Systems.s2_po ~launchpad:Systems.Remaining ~np ~alpha ~kappa:0.5 () in
      Alcotest.(check bool) "within-step: rising to the np=3 peak" true
        (within 3 >= within 2 && within 2 > within 1);
      let prev_within = ref (within 3) in
      List.iter
        (fun np ->
          let el = within np in
          Alcotest.(check bool) "within-step: decreasing past np=3" true
            (el <= !prev_within +. 1e-9);
          prev_within := el)
        [ 4; 5; 6 ])
    [ 1e-3; 1e-2 ]

let test_ablation_entropy_table () =
  let t = Ablations.entropy_table ~chis:[ 256; 1024 ] ~omega:8 ~trials:40 () in
  Alcotest.(check int) "two rows" 2 (Table.row_count t)

let test_ablation_launchpad_table () =
  let t = Ablations.launchpad_table () in
  (* 7 kappa rows plus the crossover row *)
  Alcotest.(check int) "rows" 8 (Table.row_count t)

let test_ablation_detection_table () =
  let t = Ablations.detection_table ~thresholds:[ 5; 100 ] ~steps:5 () in
  Alcotest.(check int) "two thresholds" 2 (Table.row_count t)

(* ---- Validation ---- *)

let test_validation_agreement () =
  let lines =
    Validation.run ~chi:1024 ~omega:8 ~trials:300
      ~systems:[ Systems.S1_PO; Systems.S1_SO; Systems.S0_SO ] ()
  in
  Alcotest.(check int) "three lines" 3 (List.length lines);
  let err = Validation.max_relative_error lines in
  Alcotest.(check bool) (Printf.sprintf "max relative error %.3f < 0.15" err) true (err < 0.15)

let test_ablation_limited_diversity_interpolates () =
  let module Limited = Fortress_mc.Limited in
  let alpha = 0.01 in
  let el c = Limited.expected_lifetime ~trials:3000 { Limited.default with alpha; candidates = c } in
  let so = Systems.s1_so ~alpha in
  let po = Systems.s1_po ~alpha in
  let c1 = el 1 and c4 = el 4 and c32 = el 32 in
  (* c = 1 recovers S1SO *)
  Alcotest.(check bool)
    (Printf.sprintf "c=1 near S1SO (%.1f vs %.1f)" c1 so)
    true
    (Float.abs (c1 -. so) /. so < 0.1);
  (* monotone improvement towards the PO anchor *)
  Alcotest.(check bool) "more candidates help" true (c4 > c1 && c32 > c4);
  Alcotest.(check bool)
    (Printf.sprintf "c=32 near S1PO (%.1f vs %.1f)" c32 po)
    true
    (Float.abs (c32 -. po) /. po < 0.15)

let test_ablation_overhead_factors () =
  let measurements = Overhead.compare_tiers ~requests:50 () in
  match measurements with
  | [ direct; one_proxy; three_proxies ] ->
      Alcotest.(check bool) "proxies add latency" true
        (one_proxy.Overhead.mean_rtt > direct.Overhead.mean_rtt);
      (* extra proxies add redundancy, not extra hops *)
      Alcotest.(check bool) "3 proxies no slower than 1" true
        (three_proxies.Overhead.mean_rtt <= one_proxy.Overhead.mean_rtt +. 1e-9);
      (* the overhead is bounded: well under 2.5x with our symmetric links *)
      Alcotest.(check bool) "modest factor" true
        (one_proxy.Overhead.mean_rtt /. direct.Overhead.mean_rtt < 2.5)
  | _ -> Alcotest.fail "expected three measurements"

let test_ablation_tables_render () =
  Alcotest.(check bool) "diversity table" true
    (Table.row_count (Ablations.limited_diversity_table ~candidate_counts:[ 1; 2 ] ~trials:100 ())
     = 2);
  Alcotest.(check bool) "overhead table" true
    (Table.row_count (Ablations.overhead_table ~requests:20 ()) = 3)

let test_degradation_service_quality_holds () =
  let points = Degradation.run ~omegas:[ 0; 64 ] ~requests:40 ~horizon:15 () in
  match points with
  | [ baseline; under_attack ] ->
      Alcotest.(check bool) "baseline serves everything" true
        (baseline.Degradation.served_fraction > 0.95);
      (* proxies absorb the probe load: legitimate quality is unaffected *)
      Alcotest.(check bool) "no loss under attack" true
        (under_attack.Degradation.served_fraction > 0.95);
      Alcotest.(check bool) "no latency inflation" true
        (under_attack.Degradation.mean_rtt < baseline.Degradation.mean_rtt *. 1.2)
  | _ -> Alcotest.fail "expected two points"

let test_degradation_table () =
  let points = Degradation.run ~omegas:[ 0 ] ~requests:10 ~horizon:5 () in
  Alcotest.(check int) "one row" 1 (Table.row_count (Degradation.table points))

(* ---- Sensitivity ---- *)

let test_sensitivity_geometric_elasticity () =
  (* EL = 1/alpha gives elasticity exactly -1; EL ~ 1/alpha^2 gives -2 *)
  let r1 = Sensitivity.elasticity Systems.S1_PO ~alpha:1e-3 ~kappa:0.5 in
  Alcotest.(check (float 0.01)) "s1po is -1" (-1.0) r1.Sensitivity.d_alpha;
  let r0 = Sensitivity.elasticity Systems.S0_PO ~alpha:1e-3 ~kappa:0.5 in
  Alcotest.(check (float 0.01)) "s0po is -2 (two intrusions needed)" (-2.0)
    r0.Sensitivity.d_alpha

let test_sensitivity_kappa_only_two_tier () =
  List.iter
    (fun sys ->
      let r = Sensitivity.elasticity sys ~alpha:1e-3 ~kappa:0.5 in
      Alcotest.(check (float 0.0)) "one-tier systems ignore kappa" 0.0 r.Sensitivity.d_kappa)
    [ Systems.S0_SO; Systems.S1_SO; Systems.S0_PO; Systems.S1_PO ];
  let r2 = Sensitivity.elasticity Systems.S2_PO ~alpha:1e-3 ~kappa:0.5 in
  Alcotest.(check bool) "s2po responds to kappa" true (r2.Sensitivity.d_kappa < -0.9)

let test_sensitivity_table () =
  Alcotest.(check int) "six rows" 6 (Table.row_count (Sensitivity.table ()))

(* ---- Export ---- *)

let test_export_artefacts () =
  let artefacts = Export.artefacts () in
  Alcotest.(check int) "nine artefacts" 9 (List.length artefacts);
  List.iter
    (fun (name, contents) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length contents > 0))
    artefacts;
  (* the figure CSV parses into the expected column count *)
  let f1 = List.assoc "figure1.csv" artefacts in
  (match String.split_on_char '\n' f1 with
  | header :: _ ->
      Alcotest.(check int) "six columns" 6 (List.length (String.split_on_char ',' header))
  | [] -> Alcotest.fail "empty csv")

let test_export_write_all () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "fortress-export-test" in
  let written = Export.write_all ~dir in
  Alcotest.(check int) "nine files" 9 (List.length written);
  List.iter
    (fun (path, bytes) ->
      Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path);
      Alcotest.(check bool) "size recorded" true (bytes > 0))
    written;
  List.iter (fun (path, _) -> Sys.remove path) written

let test_export_write_all_nested_dir () =
  (* regression: write_all used a single mkdir and failed with ENOENT when
     the parent of [dir] did not exist *)
  let root =
    let f = Filename.temp_file "fortress-export-nested" "" in
    Sys.remove f;
    f
  in
  let dir = Filename.concat (Filename.concat root "a") "b" in
  let written = Export.write_all ~dir in
  Alcotest.(check int) "nine files in nested dir" 9 (List.length written);
  List.iter
    (fun (path, _) -> Alcotest.(check bool) (path ^ " exists") true (Sys.file_exists path))
    written;
  List.iter (fun (path, _) -> Sys.remove path) written;
  Sys.rmdir dir;
  Sys.rmdir (Filename.concat root "a");
  Sys.rmdir root

(* ---- Choice map ---- *)

let test_choice_map_matches_paper_conclusion () =
  (* section 7: S0PO for any kappa > 0, FORTRESS at kappa = 0 *)
  List.iter
    (fun cell ->
      let expected =
        if cell.Choice_map.kappa > 0.0 then Systems.S0_PO else Systems.S2_PO
      in
      Alcotest.(check bool)
        (Printf.sprintf "winner at alpha=%g kappa=%g" cell.Choice_map.alpha
           cell.Choice_map.kappa)
        true
        (cell.Choice_map.winner = expected))
    (Choice_map.grid ~alpha_points:5 ~kappa_points:5 ())

let test_choice_map_renders () =
  let map = Choice_map.map_string ~alpha_points:10 ~kappa_points:5 () in
  Alcotest.(check bool) "has S0 region" true (String.contains map '0');
  Alcotest.(check bool) "has FORTRESS region" true (String.contains map '2');
  Alcotest.(check int) "premium table rows" 7 (Table.row_count (Choice_map.premium_table ()))

(* ---- Report ---- *)

let test_report_quick_sections () =
  let report = Report.generate ~fidelity:Report.Quick () in
  List.iter
    (fun title ->
      let header = "## " ^ title in
      let found =
        let nh = String.length report and nn = String.length header in
        let rec go i = i + nn <= nh && (String.sub report i nn = header || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "section %S present" title) true found)
    (Report.section_titles Report.Quick)

let test_report_contains_figures () =
  let report = Report.generate ~fidelity:Report.Quick () in
  let contains needle =
    let nh = String.length report and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub report i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "figure 1 data present" true (contains "S0SO");
  Alcotest.(check bool) "claim verdict present" true (contains "claim holds")

(* ---- PODC claim ---- *)

let test_podc_claim_holds () =
  Alcotest.(check bool) "S2SO(k=0) >= S0SO across the range" true
    (Figures.podc_claim_holds ~points:7 ());
  (* and the margin is material, not epsilon *)
  List.iter
    (fun r ->
      Alcotest.(check bool) "at least 1.3x" true
        (r.Figures.fortified_pb > 1.3 *. r.Figures.smr_recovery))
    (Figures.podc_claim ~points:7 ())

let test_podc_claim_table () =
  let t = Figures.podc_claim_table ~points:5 () in
  Alcotest.(check int) "rows" 5 (Table.row_count t)

(* ---- Distributions ---- *)

let test_distribution_po_memoryless () =
  let p = Distributions.profile ~trials:4000 Systems.S1_PO ~alpha:0.005 ~kappa:0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "geometric cv %.3f near 1" p.Distributions.cv)
    true
    (p.Distributions.cv > 0.9 && p.Distributions.cv < 1.1);
  Alcotest.(check bool) "heavy tail" true (p.Distributions.p90_over_median > 2.5)

let test_distribution_so_cutoff () =
  let p = Distributions.profile ~trials:4000 Systems.S1_SO ~alpha:0.005 ~kappa:0.5 in
  Alcotest.(check bool)
    (Printf.sprintf "uniform-like cv %.3f near 0.58" p.Distributions.cv)
    true
    (p.Distributions.cv > 0.5 && p.Distributions.cv < 0.65);
  Alcotest.(check bool) "light tail" true (p.Distributions.p90_over_median < 2.0);
  (* hard cutoff: no lifetime beyond the exhaustion horizon 1/alpha = 200 *)
  Array.iter
    (fun l -> Alcotest.(check bool) "within horizon" true (l <= 201.0))
    p.Distributions.result.Fortress_mc.Trial.lifetimes

let test_distribution_render () =
  let p = Distributions.profile ~trials:500 Systems.S2_PO ~alpha:0.01 ~kappa:0.5 in
  let t = Distributions.table [ p ] in
  Alcotest.(check int) "one row" 1 (Table.row_count t);
  Alcotest.(check bool) "histogram non-empty" true
    (String.length (Distributions.render_histogram p) > 0)

let test_validation_protocol_stack () =
  let line = Validation.protocol ~trials:50 () in
  Alcotest.(check bool)
    (Printf.sprintf "campaign %.1f / probe %.1f / analytic %.1f agree"
       line.Validation.campaign.Fortress_mc.Trial.mean
       line.Validation.pl_probe.Fortress_mc.Trial.mean line.Validation.pl_analytic)
    true
    (Validation.protocol_agrees line);
  Alcotest.(check int) "no censored campaigns" 0
    line.Validation.campaign.Fortress_mc.Trial.censored

let test_validation_protocol_table () =
  let line = Validation.protocol ~trials:10 () in
  Alcotest.(check int) "three tiers" 3 (Table.row_count (Validation.protocol_table line))

let test_validation_table_renders () =
  let lines = Validation.run ~chi:512 ~omega:8 ~trials:50 ~systems:[ Systems.S1_PO ] () in
  let t = Validation.table lines in
  Alcotest.(check int) "one row" 1 (Table.row_count t)

let () =
  Alcotest.run "fortress_exp"
    [
      ( "sweep",
        [
          Alcotest.test_case "log spacing" `Quick test_log_spaced;
          Alcotest.test_case "validation" `Quick test_log_spaced_validation;
          Alcotest.test_case "alpha grid range" `Quick test_alpha_grid_covers_paper_range;
          Alcotest.test_case "paper kappas" `Quick test_paper_kappas;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "row shape" `Quick test_figure1_rows_shape;
          Alcotest.test_case "paper trends hold in every row" `Quick
            test_figure1_trends_in_every_row;
          Alcotest.test_case "table renders" `Quick test_figure1_table_renders;
          Alcotest.test_case "table with MC columns" `Slow test_figure1_table_with_mc;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "row shape" `Quick test_figure2_rows_shape;
          Alcotest.test_case "monotone in kappa" `Quick test_figure2_monotone_in_kappa;
          Alcotest.test_case "kappa zero dwarfs" `Quick test_figure2_kappa_zero_dwarfs_the_rest;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "summary chain holds" `Quick test_ordering_holds;
          Alcotest.test_case "kappa crossover" `Quick test_kappa_crossover_properties;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "np table" `Quick test_ablation_np_monotone;
          Alcotest.test_case "np monotone" `Quick test_ablation_np_values_monotone;
          Alcotest.test_case "entropy table" `Slow test_ablation_entropy_table;
          Alcotest.test_case "launchpad table" `Quick test_ablation_launchpad_table;
          Alcotest.test_case "detection table" `Quick test_ablation_detection_table;
          Alcotest.test_case "limited diversity interpolates" `Slow
            test_ablation_limited_diversity_interpolates;
          Alcotest.test_case "overhead factors" `Quick test_ablation_overhead_factors;
          Alcotest.test_case "new tables render" `Quick test_ablation_tables_render;
        ] );
      ( "report",
        [
          Alcotest.test_case "quick sections present" `Quick test_report_quick_sections;
          Alcotest.test_case "contains figures" `Quick test_report_contains_figures;
        ] );
      ( "choice-map",
        [
          Alcotest.test_case "matches the section-7 conclusion" `Quick
            test_choice_map_matches_paper_conclusion;
          Alcotest.test_case "renders" `Quick test_choice_map_renders;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "geometric elasticities" `Quick test_sensitivity_geometric_elasticity;
          Alcotest.test_case "kappa only for two-tier" `Quick test_sensitivity_kappa_only_two_tier;
          Alcotest.test_case "table" `Quick test_sensitivity_table;
        ] );
      ( "export",
        [
          Alcotest.test_case "artefacts" `Quick test_export_artefacts;
          Alcotest.test_case "write_all" `Quick test_export_write_all;
          Alcotest.test_case "write_all nested dir" `Quick test_export_write_all_nested_dir;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "service quality under attack" `Quick
            test_degradation_service_quality_holds;
          Alcotest.test_case "table" `Quick test_degradation_table;
        ] );
      ( "validation",
        [
          Alcotest.test_case "three-tier agreement" `Slow test_validation_agreement;
          Alcotest.test_case "table renders" `Quick test_validation_table_renders;
          Alcotest.test_case "packet-level stack agrees" `Slow test_validation_protocol_stack;
          Alcotest.test_case "protocol table" `Quick test_validation_protocol_table;
        ] );
      ( "podc-claim",
        [
          Alcotest.test_case "fortified PB >= SMR with recovery" `Quick test_podc_claim_holds;
          Alcotest.test_case "table shape" `Quick test_podc_claim_table;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "PO is memoryless" `Slow test_distribution_po_memoryless;
          Alcotest.test_case "SO has a hard cutoff" `Slow test_distribution_so_cutoff;
          Alcotest.test_case "table and histogram render" `Slow test_distribution_render;
        ] );
    ]
