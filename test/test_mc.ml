open Fortress_mc
module Systems = Fortress_model.Systems
module Prng = Fortress_util.Prng

(* ---- Trial runner ---- *)

let test_trial_deterministic_sampler () =
  let r = Trial.run ~trials:100 ~seed:1 ~sampler:(fun _ -> Some 7) () in
  Alcotest.(check (float 1e-9)) "mean" 7.0 r.Trial.mean;
  Alcotest.(check int) "censored" 0 r.Trial.censored;
  Alcotest.(check int) "trials" 100 r.Trial.trials

let test_trial_censoring () =
  let count = ref 0 in
  let sampler _ =
    incr count;
    if !count mod 2 = 0 then None else Some 3
  in
  let r = Trial.run ~trials:10 ~seed:1 ~sampler () in
  Alcotest.(check int) "half censored" 5 r.Trial.censored;
  Alcotest.(check int) "observed" 5 (Array.length r.Trial.lifetimes)

let test_trial_reproducible () =
  let sampler prng = Some (1 + Prng.int prng ~bound:100) in
  let a = Trial.run ~trials:50 ~seed:9 ~sampler () in
  let b = Trial.run ~trials:50 ~seed:9 ~sampler () in
  Alcotest.(check (array (float 0.0))) "same lifetimes" a.Trial.lifetimes b.Trial.lifetimes;
  let c = Trial.run ~trials:50 ~seed:10 ~sampler () in
  Alcotest.(check bool) "different seed differs" false (a.Trial.lifetimes = c.Trial.lifetimes)

let test_trial_invalid () =
  Alcotest.check_raises "no trials" (Invalid_argument "Trial.run: trials must be positive")
    (fun () -> ignore (Trial.run ~trials:0 ~seed:1 ~sampler:(fun _ -> Some 1) ()))

(* ---- step-level vs analytic ---- *)

let within_tolerance ~tol analytic mc = Float.abs (mc -. analytic) /. analytic < tol

let check_step_agreement system ~alpha ~kappa ~tol =
  let cfg = { Step_level.default with alpha; kappa } in
  let r = Step_level.estimate ~trials:4000 ~seed:7 system cfg in
  let analytic = Systems.expected_lifetime system ~alpha ~kappa in
  Alcotest.(check bool)
    (Printf.sprintf "%s: MC %.1f vs analytic %.1f" (Systems.system_to_string system) r.Trial.mean
       analytic)
    true
    (within_tolerance ~tol analytic r.Trial.mean)

let test_step_s1po () = check_step_agreement Systems.S1_PO ~alpha:5e-3 ~kappa:0.5 ~tol:0.06
let test_step_s0po () = check_step_agreement Systems.S0_PO ~alpha:2e-2 ~kappa:0.5 ~tol:0.08
let test_step_s1so () = check_step_agreement Systems.S1_SO ~alpha:5e-3 ~kappa:0.5 ~tol:0.05
let test_step_s0so () = check_step_agreement Systems.S0_SO ~alpha:5e-3 ~kappa:0.5 ~tol:0.05
let test_step_s2po () = check_step_agreement Systems.S2_PO ~alpha:5e-3 ~kappa:0.5 ~tol:0.08

let test_step_s2po_kappa_one_worse_than_s1po () =
  let cfg = { Step_level.default with alpha = 5e-3; kappa = 1.0 } in
  let s2 = Step_level.estimate ~trials:3000 ~seed:3 Systems.S2_PO cfg in
  let s1 = Step_level.estimate ~trials:3000 ~seed:4 Systems.S1_PO cfg in
  Alcotest.(check bool) "launch pads make kappa=1 strictly worse" true
    (s2.Trial.mean < s1.Trial.mean)

let test_step_censoring_horizon () =
  let cfg = { Step_level.default with alpha = 1e-6; max_steps = 10 } in
  let r = Step_level.estimate ~trials:50 ~seed:5 Systems.S1_PO cfg in
  Alcotest.(check int) "all censored at tiny horizon" 50 r.Trial.censored

let test_step_invalid_config () =
  Alcotest.check_raises "alpha range" (Invalid_argument "Step_level: alpha in [0,1]") (fun () ->
      ignore
        (Step_level.sampler Systems.S1_PO { Step_level.default with alpha = 1.5 }
           (Prng.create ~seed:1)))

(* ---- probe-level ---- *)

let test_probe_alpha_of () =
  let cfg = { Probe_level.default with chi = 1000; omega = 10 } in
  Alcotest.(check (float 1e-12)) "omega/chi" 0.01 (Probe_level.alpha_of cfg)

let test_probe_s1_po_matches_analytic () =
  let cfg = { Probe_level.default with chi = 1024; omega = 8 } in
  let alpha = Probe_level.alpha_of cfg in
  let r = Probe_level.estimate ~trials:800 ~seed:11 Systems.S1_PO cfg in
  let analytic = Systems.s1_po ~alpha in
  Alcotest.(check bool)
    (Printf.sprintf "probe MC %.1f vs analytic %.1f" r.Trial.mean analytic)
    true
    (within_tolerance ~tol:0.1 analytic r.Trial.mean)

let test_probe_s1_so_matches_analytic () =
  let cfg = { Probe_level.default with chi = 1024; omega = 8 } in
  let alpha = Probe_level.alpha_of cfg in
  let r = Probe_level.estimate ~trials:800 ~seed:13 Systems.S1_SO cfg in
  let analytic = Systems.s1_so ~alpha in
  Alcotest.(check bool)
    (Printf.sprintf "probe MC %.1f vs analytic %.1f" r.Trial.mean analytic)
    true
    (within_tolerance ~tol:0.1 analytic r.Trial.mean)

let test_probe_s1_so_never_censors_past_chi () =
  (* without replacement the key must fall within chi/omega steps *)
  let cfg = { Probe_level.default with chi = 256; omega = 8; max_steps = 64 } in
  let r = Probe_level.estimate ~trials:200 ~seed:17 Systems.S1_SO cfg in
  Alcotest.(check int) "exhaustive search always terminates" 0 r.Trial.censored;
  Array.iter
    (fun l -> Alcotest.(check bool) "within chi/omega steps" true (l <= 32.0))
    r.Trial.lifetimes

let test_probe_s0_so_before_s1_so () =
  let cfg = { Probe_level.default with chi = 1024; omega = 8 } in
  let s0 = Probe_level.estimate ~trials:600 ~seed:19 Systems.S0_SO cfg in
  let s1 = Probe_level.estimate ~trials:600 ~seed:19 Systems.S1_SO cfg in
  Alcotest.(check bool) "S1SO outlives S0SO at probe level" true
    (s1.Trial.mean > s0.Trial.mean)

let test_probe_s2_po_beats_s1_po_at_half_kappa () =
  let cfg = { Probe_level.default with chi = 1024; omega = 8; kappa = 0.5 } in
  let s2 = Probe_level.estimate ~trials:600 ~seed:23 Systems.S2_PO cfg in
  let s1 = Probe_level.estimate ~trials:600 ~seed:23 Systems.S1_PO cfg in
  Alcotest.(check bool) "proxies pay off" true (s2.Trial.mean > s1.Trial.mean)

let test_probe_s2_so_collapses () =
  (* permanent launch pads: S2SO dies much faster than S2PO *)
  let cfg = { Probe_level.default with chi = 1024; omega = 8; kappa = 0.5 } in
  let po = Probe_level.estimate ~trials:400 ~seed:29 Systems.S2_PO cfg in
  let so = Probe_level.estimate ~trials:400 ~seed:29 Systems.S2_SO cfg in
  Alcotest.(check bool) "SO collapses" true (so.Trial.mean < po.Trial.mean /. 2.0)

let test_probe_invalid_config () =
  Alcotest.check_raises "chi too small" (Invalid_argument "Probe_level: chi must be >= 2")
    (fun () ->
      ignore
        (Probe_level.lifetime Systems.S1_PO { Probe_level.default with chi = 1 }
           (Prng.create ~seed:1)))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"step sampler lifetimes are positive" ~count:100
      (pair (float_range 0.001 0.05) small_int)
      (fun (alpha, seed) ->
        let cfg = { Step_level.default with alpha } in
        match Step_level.sampler Systems.S2_PO cfg (Prng.create ~seed) with
        | Some steps -> steps >= 1
        | None -> true);
    Test.make ~name:"probe lifetime bounded by key exhaustion for S1SO" ~count:50
      small_int
      (fun seed ->
        let cfg = { Probe_level.default with chi = 128; omega = 4; max_steps = 1000 } in
        match Probe_level.lifetime Systems.S1_SO cfg (Prng.create ~seed) with
        | Some steps -> steps <= 32
        | None -> false);
  ]

let () =
  Alcotest.run "fortress_mc"
    [
      ( "trial",
        [
          Alcotest.test_case "deterministic sampler" `Quick test_trial_deterministic_sampler;
          Alcotest.test_case "censoring" `Quick test_trial_censoring;
          Alcotest.test_case "reproducible" `Quick test_trial_reproducible;
          Alcotest.test_case "invalid trials" `Quick test_trial_invalid;
        ] );
      ( "step-level",
        [
          Alcotest.test_case "s1po agrees" `Slow test_step_s1po;
          Alcotest.test_case "s0po agrees" `Slow test_step_s0po;
          Alcotest.test_case "s1so agrees" `Slow test_step_s1so;
          Alcotest.test_case "s0so agrees" `Slow test_step_s0so;
          Alcotest.test_case "s2po agrees" `Slow test_step_s2po;
          Alcotest.test_case "kappa=1 worse than s1po" `Slow
            test_step_s2po_kappa_one_worse_than_s1po;
          Alcotest.test_case "censoring horizon" `Quick test_step_censoring_horizon;
          Alcotest.test_case "invalid config" `Quick test_step_invalid_config;
        ] );
      ( "probe-level",
        [
          Alcotest.test_case "alpha_of" `Quick test_probe_alpha_of;
          Alcotest.test_case "s1po matches analytic" `Slow test_probe_s1_po_matches_analytic;
          Alcotest.test_case "s1so matches analytic" `Slow test_probe_s1_so_matches_analytic;
          Alcotest.test_case "s1so exhaustive termination" `Quick
            test_probe_s1_so_never_censors_past_chi;
          Alcotest.test_case "s0so falls before s1so" `Slow test_probe_s0_so_before_s1_so;
          Alcotest.test_case "s2po beats s1po" `Slow test_probe_s2_po_beats_s1_po_at_half_kappa;
          Alcotest.test_case "s2so collapses" `Slow test_probe_s2_so_collapses;
          Alcotest.test_case "invalid config" `Quick test_probe_invalid_config;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
