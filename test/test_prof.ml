module Profiler = Fortress_prof.Profiler
module Convergence = Fortress_prof.Convergence
module Trace_export = Fortress_prof.Trace_export
module Json = Fortress_obs.Json
module Event = Fortress_obs.Event
module Sink = Fortress_obs.Sink

(* a hand-cranked clock so timing assertions are exact *)
let fake_time = ref 0.0
let tick dt = fake_time := !fake_time +. dt

let with_profiler f =
  Profiler.reset ();
  Profiler.set_clock (fun () -> !fake_time);
  Profiler.set_sample_capacity 0;
  Profiler.enable ();
  Fun.protect ~finally:(fun () ->
      Profiler.disable ();
      Profiler.reset ();
      Profiler.set_sample_capacity 0)
    f

let entry name =
  match List.find_opt (fun (e : Profiler.entry) -> e.name = name) (Profiler.snapshot ()) with
  | Some e -> e
  | None -> Alcotest.failf "no snapshot entry for phase %s" name

let feq = Alcotest.(check (float 1e-9))

(* ---- profiler ---- *)

let test_self_vs_total () =
  let outer = Profiler.register "t.outer" in
  let inner = Profiler.register "t.inner" in
  with_profiler (fun () ->
      Profiler.record outer (fun () ->
          tick 1.0;
          Profiler.record inner (fun () -> tick 2.0);
          tick 0.5);
      let o = entry "t.outer" and i = entry "t.inner" in
      feq "outer total" 3.5 o.total_s;
      feq "outer self" 1.5 o.self_s;
      feq "inner total" 2.0 i.total_s;
      feq "inner self" 2.0 i.self_s;
      Alcotest.(check int) "outer count" 1 o.count;
      Alcotest.(check int) "inner count" 1 i.count)

let test_recursion_counts_outermost_total_once () =
  let p = Profiler.register "t.rec" in
  with_profiler (fun () ->
      let rec go n =
        Profiler.record p (fun () ->
            tick 1.0;
            if n > 0 then go (n - 1))
      in
      go 2;
      let e = entry "t.rec" in
      Alcotest.(check int) "count" 3 e.count;
      (* self time sums every frame; total only the outermost *)
      feq "self" 3.0 e.self_s;
      feq "total" 3.0 e.total_s)

let test_disabled_records_nothing () =
  Profiler.reset ();
  Profiler.disable ();
  let p = Profiler.register "t.disabled" in
  let r = Profiler.record p (fun () -> 42) in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check bool) "no snapshot entries" true
    (not (List.exists (fun (e : Profiler.entry) -> e.name = "t.disabled") (Profiler.snapshot ())))

let test_exception_safety () =
  let p = Profiler.register "t.raise" in
  with_profiler (fun () ->
      (try Profiler.record p (fun () -> tick 1.0; failwith "boom")
       with Failure _ -> ());
      let e = entry "t.raise" in
      Alcotest.(check int) "frame closed" 1 e.count;
      feq "time attributed" 1.0 e.self_s)

let test_mismatched_leave_ignored () =
  let p = Profiler.register "t.mismatch" in
  with_profiler (fun () ->
      Profiler.leave p;
      (* spurious leave must not corrupt later frames *)
      Profiler.record p (fun () -> tick 1.0);
      let e = entry "t.mismatch" in
      Alcotest.(check int) "count" 1 e.count;
      feq "self" 1.0 e.self_s)

let test_sample_ring () =
  let p = Profiler.register "t.ring" in
  Profiler.reset ();
  Profiler.set_clock (fun () -> !fake_time);
  Profiler.set_sample_capacity 3;
  Profiler.enable ();
  Fun.protect ~finally:(fun () ->
      Profiler.disable ();
      Profiler.reset ();
      Profiler.set_sample_capacity 0)
    (fun () ->
      for _ = 1 to 5 do
        Profiler.record p (fun () -> tick 1.0)
      done;
      let samples = Profiler.samples () in
      Alcotest.(check int) "bounded" 3 (List.length samples);
      (* the ring keeps the newest frames, oldest first *)
      let starts = List.map (fun (s : Profiler.sample) -> s.s_start) samples in
      Alcotest.(check (list (float 1e-9))) "newest kept" [ 2.0; 3.0; 4.0 ] starts;
      List.iter (fun (s : Profiler.sample) -> feq "dur" 1.0 s.s_dur) samples)

let test_to_json_shape () =
  let p = Profiler.register "t.json" in
  with_profiler (fun () ->
      Profiler.record p (fun () -> tick 1.0);
      match Profiler.to_json () with
      | Json.List (Json.Obj fields :: _) ->
          Alcotest.(check (option string))
            "phase name" (Some "t.json")
            (Option.bind (List.assoc_opt "phase" fields) Json.str)
      | _ -> Alcotest.fail "expected a list of phase objects")

(* ---- convergence ---- *)

let test_convergence_checkpoints () =
  let m = Convergence.create ~batch:4 () in
  let cps = ref 0 in
  for i = 1 to 10 do
    match Convergence.observe m (Some (float_of_int (100 + (i mod 3)))) with
    | Some cp ->
        incr cps;
        Alcotest.(check int) "checkpoint at batch boundary" 0 (cp.Convergence.after mod 4)
    | None -> ()
  done;
  Alcotest.(check int) "two checkpoints in 10 trials" 2 !cps;
  Alcotest.(check int) "total" 10 (Convergence.total m);
  Alcotest.(check int) "observed" 10 (Convergence.observed m)

let test_convergence_tight_stream_converges () =
  let m = Convergence.create ~batch:5 ~target_rel:0.05 () in
  (* tiny relative spread: converges almost immediately *)
  for i = 1 to 20 do
    ignore (Convergence.observe m (Some (1000.0 +. float_of_int (i mod 2))))
  done;
  Alcotest.(check bool) "converged" true (Convergence.converged m);
  Alcotest.(check (option int)) "at first checkpoint" (Some 5) (Convergence.converged_at m)

let test_convergence_wide_stream_projects () =
  let m = Convergence.create ~batch:5 ~target_rel:0.05 () in
  (* alternating 10/1000: huge relative CI at n=10 *)
  for i = 1 to 10 do
    ignore (Convergence.observe m (Some (if i mod 2 = 0 then 10.0 else 1000.0)))
  done;
  Alcotest.(check bool) "not converged" false (Convergence.converged m);
  match Convergence.projected_trials m with
  | None -> Alcotest.fail "expected a projection"
  | Some n -> Alcotest.(check bool) "projection exceeds sample" true (n > 10)

let test_convergence_censored () =
  let m = Convergence.create ~batch:2 () in
  ignore (Convergence.observe m (Some 5.0));
  ignore (Convergence.observe m None);
  Alcotest.(check int) "total" 2 (Convergence.total m);
  Alcotest.(check int) "censored" 1 (Convergence.censored m);
  Alcotest.(check int) "observed" 1 (Convergence.observed m);
  feq "mean ignores censored" 5.0 (Convergence.mean m)

let test_convergence_json_roundtrip () =
  let m = Convergence.create ~batch:2 () in
  for i = 1 to 6 do
    ignore (Convergence.observe m (Some (float_of_int (50 + i))))
  done;
  let s = Json.to_string (Convergence.to_json m) in
  match Json.parse s with
  | Error e -> Alcotest.failf "convergence json does not reparse: %s" e
  | Ok json ->
      Alcotest.(check (option int)) "trials" (Some 6)
        (Option.bind (Json.member "trials" json) Json.int);
      let cps = Option.bind (Json.member "checkpoints" json) Json.list in
      Alcotest.(check (option int)) "checkpoints" (Some 3) (Option.map List.length cps)

(* ---- trace export ---- *)

let sample_events =
  [
    (0.0, Event.Step { n = 1 });
    ( 4.0,
      Event.Span_finished
        {
          id = 1;
          parent = None;
          name = "attack.step";
          start_time = 0.0;
          duration = 4.0;
          attrs = [ ("step", "1") ];
        } );
    ( 5.0,
      Event.Span_finished
        {
          id = 2;
          parent = Some 1;
          name = "proxy.handle";
          start_time = 4.0;
          duration = 1.0;
          attrs = [ ("node", "proxy-0") ];
        } );
    (6.0, Event.Fault { action = "crash"; target = "server-1"; detail = "" });
  ]

let test_trace_export_roundtrip () =
  let samples = [ { Profiler.s_phase = "engine.fire"; s_start = 0.001; s_dur = 0.002 } ] in
  let doc = Trace_export.make ~samples sample_events in
  let s = Json.to_string doc in
  match Json.parse s with
  | Error e -> Alcotest.failf "trace.json does not reparse: %s" e
  | Ok json -> (
      Alcotest.(check (option string))
        "displayTimeUnit" (Some "ms")
        (Option.bind (Json.member "displayTimeUnit" json) Json.str);
      match Option.bind (Json.member "traceEvents" json) Json.list with
      | None -> Alcotest.fail "traceEvents missing"
      | Some rows ->
          let phs =
            List.filter_map (fun r -> Option.bind (Json.member "ph" r) Json.str) rows
          in
          Alcotest.(check bool) "has complete events" true (List.mem "X" phs);
          Alcotest.(check bool) "has instants" true (List.mem "i" phs);
          Alcotest.(check bool) "has metadata" true (List.mem "M" phs);
          (* every event carries the mandatory Trace Event Format fields *)
          List.iter
            (fun r ->
              Alcotest.(check bool) "name" true (Json.member "name" r <> None);
              Alcotest.(check bool) "pid" true (Json.member "pid" r <> None))
            rows)

let test_trace_export_lanes () =
  let doc = Trace_export.make sample_events in
  match Json.member "traceEvents" doc with
  | Some (Json.List rows) ->
      let lane_of name =
        List.find_map
          (fun r ->
            match (Json.member "name" r, Json.member "ph" r) with
            | Some (Json.Str n), Some (Json.Str "X") when n = name ->
                Option.bind (Json.member "tid" r) Json.int
            | _ -> None)
          rows
      in
      (* span with a node attr gets its own lane; span without one falls
         back to the name prefix — they must differ *)
      let a = lane_of "attack.step" and b = lane_of "proxy.handle" in
      Alcotest.(check bool) "both assigned" true (a <> None && b <> None);
      Alcotest.(check bool) "distinct lanes" true (a <> b)
  | _ -> Alcotest.fail "traceEvents missing"

let test_trace_export_virtual_time_scaled () =
  let doc = Trace_export.make ~scale:1000.0 sample_events in
  match Json.member "traceEvents" doc with
  | Some (Json.List rows) ->
      let dur =
        List.find_map
          (fun r ->
            match Json.member "name" r with
            | Some (Json.Str "attack.step") -> Option.bind (Json.member "dur" r) Json.num
            | _ -> None)
          rows
      in
      Alcotest.(check (option (float 1e-9))) "scaled duration" (Some 4000.0) dur
  | _ -> Alcotest.fail "traceEvents missing"

let span ~id ?parent ~name ~start ~dur ?(attrs = []) () =
  ( start +. dur,
    Event.Span_finished
      { id; parent; name; start_time = start; duration = dur; attrs } )

let causal_events =
  [
    span ~id:1 ~name:"client.request" ~start:0.0 ~dur:5.0 () ;
    span ~id:2 ~parent:1 ~name:"net.send" ~start:0.5 ~dur:0.0
      ~attrs:[ ("node", "client"); ("dst", "proxy-0") ] ();
    span ~id:3 ~parent:2 ~name:"net.deliver" ~start:2.5 ~dur:0.1
      ~attrs:[ ("node", "proxy-0") ] ();
  ]

let rows_of doc =
  match Json.member "traceEvents" doc with
  | Some (Json.List rows) -> rows
  | _ -> Alcotest.fail "traceEvents missing"

let flows_of doc =
  List.filter_map
    (fun r ->
      match (Json.member "ph" r, Json.member "name" r) with
      | Some (Json.Str ph), Some (Json.Str "net.flow") when ph = "s" || ph = "f" ->
          Some
            ( ph,
              Option.bind (Json.member "tid" r) Json.int,
              Option.bind (Json.member "id" r) Json.num )
      | _ -> None)
    (rows_of doc)

let test_trace_export_flow_arrows () =
  let doc = Trace_export.make causal_events in
  match flows_of doc with
  | [ ("s", s_tid, s_id); ("f", f_tid, f_id) ] ->
      Alcotest.(check bool) "bound by the deliver span id" true
        (s_id = Some 3.0 && f_id = Some 3.0);
      Alcotest.(check bool) "arrow crosses lanes" true (s_tid <> f_tid && s_tid <> None);
      (* the finish end carries the enclosing-slice binding point *)
      let f_bp =
        List.find_map
          (fun r ->
            match Json.member "ph" r with
            | Some (Json.Str "f") -> Option.bind (Json.member "bp" r) Json.str
            | _ -> None)
          (rows_of doc)
      in
      Alcotest.(check (option string)) "bp=e on the finish" (Some "e") f_bp
  | flows -> Alcotest.failf "expected one s/f flow pair, got %d events" (List.length flows)

let test_trace_export_no_flows_without_causal_spans () =
  (* a deliver whose parent is not a net.send (or is absent) draws no arrow *)
  let doc = Trace_export.make sample_events in
  Alcotest.(check int) "no flow events" 0 (List.length (flows_of doc));
  let orphan =
    [ span ~id:9 ~name:"net.deliver" ~start:1.0 ~dur:0.1 ~attrs:[ ("node", "x") ] () ]
  in
  Alcotest.(check int) "orphan deliver draws no arrow" 0
    (List.length (flows_of (Trace_export.make orphan)))

(* ---- trial integration ---- *)

let const_sampler steps _prng = Some steps

let test_trial_monitor_emits_convergence_notes () =
  let sink = Sink.create () in
  let seen = ref 0 in
  ignore
    (Sink.attach sink (fun ~time:_ ev ->
         match ev with Event.Note { label = "convergence"; _ } -> incr seen | _ -> ()));
  let m = Convergence.create ~batch:10 () in
  let r =
    Fortress_mc.Trial.run ~sink ~monitor:m ~trials:30 ~seed:7 ~sampler:(const_sampler 100) ()
  in
  Alcotest.(check int) "all trials run (no early stop)" 30 r.Fortress_mc.Trial.trials;
  Alcotest.(check int) "one note per checkpoint" 3 !seen

let test_trial_early_stop_truncates () =
  let m = Convergence.create ~batch:10 ~target_rel:0.05 () in
  let r =
    Fortress_mc.Trial.run ~monitor:m ~early_stop:true ~trials:1000 ~seed:7
      ~sampler:(const_sampler 100) ()
  in
  Alcotest.(check int) "stopped at first checkpoint" 10 r.Fortress_mc.Trial.trials;
  Alcotest.(check (option int)) "monitor agrees" (Some 10) (Convergence.converged_at m)

let test_trial_monitor_does_not_change_results () =
  let sampler prng = Some (1 + Fortress_util.Prng.int prng ~bound:100) in
  let plain = Fortress_mc.Trial.run ~trials:50 ~seed:11 ~sampler () in
  let m = Convergence.create ~batch:10 () in
  let monitored = Fortress_mc.Trial.run ~monitor:m ~trials:50 ~seed:11 ~sampler () in
  Alcotest.(check (array (float 1e-9)))
    "identical lifetimes" plain.Fortress_mc.Trial.lifetimes
    monitored.Fortress_mc.Trial.lifetimes

let () =
  Alcotest.run "fortress_prof"
    [
      ( "profiler",
        [
          Alcotest.test_case "self vs total attribution" `Quick test_self_vs_total;
          Alcotest.test_case "recursion counts outermost total once" `Quick
            test_recursion_counts_outermost_total_once;
          Alcotest.test_case "disabled records nothing" `Quick test_disabled_records_nothing;
          Alcotest.test_case "exception safety" `Quick test_exception_safety;
          Alcotest.test_case "mismatched leave ignored" `Quick test_mismatched_leave_ignored;
          Alcotest.test_case "sample ring bounded" `Quick test_sample_ring;
          Alcotest.test_case "to_json shape" `Quick test_to_json_shape;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "batch checkpoints" `Quick test_convergence_checkpoints;
          Alcotest.test_case "tight stream converges" `Quick
            test_convergence_tight_stream_converges;
          Alcotest.test_case "wide stream projects" `Quick test_convergence_wide_stream_projects;
          Alcotest.test_case "censored bookkeeping" `Quick test_convergence_censored;
          Alcotest.test_case "json reparses" `Quick test_convergence_json_roundtrip;
        ] );
      ( "trace_export",
        [
          Alcotest.test_case "document reparses" `Quick test_trace_export_roundtrip;
          Alcotest.test_case "lane assignment" `Quick test_trace_export_lanes;
          Alcotest.test_case "virtual time scaling" `Quick test_trace_export_virtual_time_scaled;
          Alcotest.test_case "flow arrows on causal edges" `Quick
            test_trace_export_flow_arrows;
          Alcotest.test_case "no flows without causal spans" `Quick
            test_trace_export_no_flows_without_causal_spans;
        ] );
      ( "trial",
        [
          Alcotest.test_case "monitor emits convergence notes" `Quick
            test_trial_monitor_emits_convergence_notes;
          Alcotest.test_case "early stop truncates" `Quick test_trial_early_stop_truncates;
          Alcotest.test_case "monitor does not change results" `Quick
            test_trial_monitor_does_not_change_results;
        ] );
    ]
