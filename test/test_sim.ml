open Fortress_sim

(* ---- Heap ---- *)

let test_heap_ordering () =
  let h = Heap.create () in
  Heap.push h ~priority:3.0 ~seq:1 "c";
  Heap.push h ~priority:1.0 ~seq:2 "a";
  Heap.push h ~priority:2.0 ~seq:3 "b";
  let pop () = match Heap.pop h with Some (_, _, v) -> v | None -> "empty" in
  Alcotest.(check string) "min first" "a" (pop ());
  Alcotest.(check string) "then" "b" (pop ());
  Alcotest.(check string) "then" "c" (pop ());
  Alcotest.(check string) "empty" "empty" (pop ())

let test_heap_fifo_ties () =
  let h = Heap.create () in
  Heap.push h ~priority:1.0 ~seq:10 "first";
  Heap.push h ~priority:1.0 ~seq:20 "second";
  Heap.push h ~priority:1.0 ~seq:30 "third";
  let pop () = match Heap.pop h with Some (_, _, v) -> v | None -> "empty" in
  Alcotest.(check string) "fifo" "first" (pop ());
  Alcotest.(check string) "fifo" "second" (pop ());
  Alcotest.(check string) "fifo" "third" (pop ())

let test_heap_large_random () =
  let p = Fortress_util.Prng.create ~seed:99 in
  let h = Heap.create () in
  for i = 1 to 1000 do
    Heap.push h ~priority:(Fortress_util.Prng.float p) ~seq:i i
  done;
  Alcotest.(check int) "length" 1000 (Heap.length h);
  let last = ref neg_infinity in
  let ok = ref true in
  for _ = 1 to 1000 do
    match Heap.pop h with
    | Some (pr, _, _) ->
        if pr < !last then ok := false;
        last := pr
    | None -> ok := false
  done;
  Alcotest.(check bool) "sorted drain" true !ok

let test_heap_peek () =
  let h = Heap.create () in
  Alcotest.(check bool) "peek empty" true (Heap.peek h = None);
  Heap.push h ~priority:5.0 ~seq:1 "x";
  (match Heap.peek h with
  | Some (p, _, v) ->
      Alcotest.(check (float 0.0)) "peek priority" 5.0 p;
      Alcotest.(check string) "peek value" "x" v
  | None -> Alcotest.fail "expected an element");
  Alcotest.(check int) "peek does not remove" 1 (Heap.length h)

(* ---- Engine ---- *)

let test_engine_ordering () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> order := "b" :: !order));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> order := "a" :: !order));
  ignore (Engine.schedule e ~delay:3.0 (fun () -> order := "c" :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !order);
  Alcotest.(check (float 0.0)) "clock at last event" 3.0 (Engine.now e)

let test_engine_same_time_fifo () =
  let e = Engine.create () in
  let order = ref [] in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> order := 1 :: !order));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> order := 2 :: !order));
  Engine.run e;
  Alcotest.(check (list int)) "insertion order at same time" [ 1; 2 ] (List.rev !order)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check bool) "handle reports cancelled" true (Engine.is_cancelled h)

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         times := Engine.now e :: !times;
         ignore (Engine.schedule e ~delay:0.5 (fun () -> times := Engine.now e :: !times))));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "nested event time" [ 1.0; 1.5 ] (List.rev !times)

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr count));
  ignore (Engine.schedule e ~delay:10.0 (fun () -> incr count));
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only first fired" 1 !count;
  Alcotest.(check (float 0.0)) "clock advanced to limit" 5.0 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "second fires later" 2 !count

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay")
    (fun () -> ignore (Engine.schedule e ~delay:(-1.0) (fun () -> ())))

let test_engine_schedule_at_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past time" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> ignore (Engine.schedule_at e ~time:1.0 (fun () -> ())))

let test_engine_every () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.every e ~period:1.0 (fun () -> incr count) in
  ignore (Engine.schedule e ~delay:5.5 (fun () -> Engine.cancel h));
  Engine.run ~until:20.0 e;
  Alcotest.(check int) "fires until cancelled" 5 !count

let test_engine_every_until () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.every e ~period:1.0 ~until:3.5 (fun () -> incr count));
  Engine.run e;
  Alcotest.(check int) "bounded series" 3 !count

let test_engine_pending () =
  let e = Engine.create () in
  let h1 = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.cancel h1;
  Alcotest.(check int) "one live after cancel" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "none after run" 0 (Engine.pending e)

let test_engine_step () =
  let e = Engine.create () in
  let count = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> incr count));
  Alcotest.(check bool) "stepped" true (Engine.step e);
  Alcotest.(check int) "event ran" 1 !count;
  Alcotest.(check bool) "empty" false (Engine.step e)

let test_engine_determinism () =
  let run_once seed =
    let e = Engine.create ~prng:(Fortress_util.Prng.create ~seed) () in
    let log = ref [] in
    for i = 1 to 20 do
      let delay = Fortress_util.Prng.float (Engine.prng e) *. 10.0 in
      ignore (Engine.schedule e ~delay (fun () -> log := (i, Engine.now e) :: !log))
    done;
    Engine.run e;
    !log
  in
  Alcotest.(check bool) "same seed, same execution" true (run_once 5 = run_once 5);
  Alcotest.(check bool) "different seed, different execution" true (run_once 5 <> run_once 6)

let test_engine_cancel_periodic_mid_series () =
  let e = Engine.create () in
  let count = ref 0 in
  let h = Engine.every e ~period:2.0 (fun () -> incr count) in
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "two firings by t=5" 2 !count;
  Engine.cancel h;
  Engine.run ~until:50.0 e;
  Alcotest.(check int) "no firings after cancel" 2 !count

let test_engine_every_invalid_period () =
  let e = Engine.create () in
  Alcotest.check_raises "zero period" (Invalid_argument "Engine.every: period must be positive")
    (fun () -> ignore (Engine.every e ~period:0.0 (fun () -> ())))

let test_engine_zero_delay () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:0.0 (fun () -> fired := true));
  Engine.run e;
  Alcotest.(check bool) "zero-delay event fires" true !fired;
  Alcotest.(check (float 0.0)) "clock unchanged" 0.0 (Engine.now e)

let test_engine_record_reaches_trace () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:3.0 (fun () -> Engine.record e ~label:"evt" "hello"));
  Engine.run e;
  match Fortress_sim.Trace.entries (Engine.trace e) with
  | [ entry ] ->
      Alcotest.(check string) "label" "evt" entry.Fortress_sim.Trace.label;
      Alcotest.(check (float 0.0)) "stamped at fire time" 3.0 entry.Fortress_sim.Trace.time
  | _ -> Alcotest.fail "expected exactly one entry"

let test_engine_run_until_exact_boundary () =
  (* an event exactly at the limit is executed, not stranded *)
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:10.0 (fun () -> fired := true));
  Engine.run ~until:10.0 e;
  Alcotest.(check bool) "boundary event fires" true !fired

(* ---- Trace ---- *)

let test_trace_record () =
  let tr = Trace.create () in
  Trace.record tr ~time:1.0 ~label:"a" "first";
  Trace.record tr ~time:2.0 ~label:"b" "second";
  Alcotest.(check int) "length" 2 (Trace.length tr);
  match Trace.entries tr with
  | [ e1; e2 ] ->
      Alcotest.(check string) "order" "a" e1.Trace.label;
      Alcotest.(check string) "order" "b" e2.Trace.label
  | _ -> Alcotest.fail "expected two entries"

let test_trace_ring_eviction () =
  let tr = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) ~label:"t" (string_of_int i)
  done;
  Alcotest.(check int) "retained" 3 (Trace.length tr);
  Alcotest.(check int) "recorded" 5 (Trace.recorded tr);
  match Trace.entries tr with
  | [ a; b; c ] ->
      Alcotest.(check string) "oldest retained" "3" a.Trace.detail;
      Alcotest.(check string) "newest" "5" c.Trace.detail;
      ignore b
  | _ -> Alcotest.fail "expected three entries"

let test_trace_counters () =
  let tr = Trace.create () in
  Trace.incr tr "probes";
  Trace.incr tr "probes";
  Trace.incr tr "crashes";
  Alcotest.(check int) "probes" 2 (Trace.counter tr "probes");
  Alcotest.(check int) "missing" 0 (Trace.counter tr "nothing");
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("crashes", 1); ("probes", 2) ]
    (Trace.counters tr)

let test_trace_wraparound_ordering () =
  (* after several full wraps, entries still come back oldest first *)
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 11 do
    Trace.record tr ~time:(float_of_int i) ~label:"w" (string_of_int i)
  done;
  Alcotest.(check int) "ring full" 4 (Trace.length tr);
  let details = List.map (fun e -> e.Trace.detail) (Trace.entries tr) in
  Alcotest.(check (list string)) "oldest-to-newest across the wrap"
    [ "8"; "9"; "10"; "11" ] details;
  let times = List.map (fun e -> e.Trace.time) (Trace.entries tr) in
  Alcotest.(check bool) "times non-decreasing" true
    (List.sort compare times = times)

let test_trace_counters_survive_eviction () =
  (* the ring forgets, the counters do not *)
  let tr = Trace.create ~capacity:2 () in
  for i = 1 to 50 do
    Trace.incr tr "probe";
    Trace.record tr ~time:(float_of_int i) ~label:"probe" "sent"
  done;
  Alcotest.(check int) "only capacity entries retained" 2 (Trace.length tr);
  Alcotest.(check int) "all records counted" 50 (Trace.recorded tr);
  Alcotest.(check int) "counter unaffected by eviction" 50 (Trace.counter tr "probe")

let test_trace_dump_limit () =
  let tr = Trace.create () in
  for i = 1 to 10 do
    Trace.record tr ~time:(float_of_int i) ~label:"x" (string_of_int i)
  done;
  let s = Trace.dump ~limit:2 tr in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "limited lines" 2 (List.length lines)

let () =
  Alcotest.run "fortress_sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "large random drain" `Quick test_heap_large_random;
          Alcotest.test_case "peek" `Quick test_heap_peek;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_ordering;
          Alcotest.test_case "fifo at same instant" `Quick test_engine_same_time_fifo;
          Alcotest.test_case "cancellation" `Quick test_engine_cancel;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_schedule;
          Alcotest.test_case "run until" `Quick test_engine_run_until;
          Alcotest.test_case "negative delay rejected" `Quick test_engine_negative_delay;
          Alcotest.test_case "schedule_at past rejected" `Quick test_engine_schedule_at_past;
          Alcotest.test_case "periodic events" `Quick test_engine_every;
          Alcotest.test_case "periodic with until" `Quick test_engine_every_until;
          Alcotest.test_case "pending count" `Quick test_engine_pending;
          Alcotest.test_case "single step" `Quick test_engine_step;
          Alcotest.test_case "seeded determinism" `Quick test_engine_determinism;
          Alcotest.test_case "cancel periodic mid-series" `Quick
            test_engine_cancel_periodic_mid_series;
          Alcotest.test_case "every invalid period" `Quick test_engine_every_invalid_period;
          Alcotest.test_case "zero delay" `Quick test_engine_zero_delay;
          Alcotest.test_case "record reaches trace" `Quick test_engine_record_reaches_trace;
          Alcotest.test_case "run until exact boundary" `Quick
            test_engine_run_until_exact_boundary;
        ] );
      ( "trace",
        [
          Alcotest.test_case "record and read" `Quick test_trace_record;
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
          Alcotest.test_case "counters" `Quick test_trace_counters;
          Alcotest.test_case "wraparound ordering" `Quick test_trace_wraparound_ordering;
          Alcotest.test_case "counters survive eviction" `Quick
            test_trace_counters_survive_eviction;
          Alcotest.test_case "dump limit" `Quick test_trace_dump_limit;
        ] );
    ]
