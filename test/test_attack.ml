open Fortress_attack
module Engine = Fortress_sim.Engine
module Keyspace = Fortress_defense.Keyspace
module Instance = Fortress_defense.Instance
module Daemon = Fortress_defense.Daemon
module Deployment = Fortress_core.Deployment
module Obfuscation = Fortress_core.Obfuscation
module Prng = Fortress_util.Prng

(* ---- Knowledge ---- *)

let test_knowledge_elimination () =
  let ks = Keyspace.of_size 100 in
  let k = Knowledge.create ks in
  Alcotest.(check int) "nothing eliminated" 0 (Knowledge.eliminated k);
  Alcotest.(check int) "all remaining" 100 (Knowledge.remaining k);
  Knowledge.observe_crash k ~guess:5;
  Knowledge.observe_crash k ~guess:6;
  Alcotest.(check int) "two eliminated" 2 (Knowledge.eliminated k);
  Alcotest.(check int) "98 left" 98 (Knowledge.remaining k)

let test_knowledge_never_repeats () =
  let ks = Keyspace.of_size 50 in
  let k = Knowledge.create ks in
  let prng = Prng.create ~seed:1 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 50 do
    let g = Option.get (Knowledge.next_guess k prng) in
    Alcotest.(check bool) "fresh guess" false (Hashtbl.mem seen g);
    Hashtbl.replace seen g ();
    Knowledge.observe_crash k ~guess:g
  done;
  Alcotest.(check int) "space exhausted" 0 (Knowledge.remaining k)

let test_knowledge_exhaustion_graceful () =
  let ks = Keyspace.of_size 3 in
  let k = Knowledge.create ks in
  let prng = Prng.create ~seed:2 in
  for _ = 1 to 3 do
    Knowledge.observe_crash k ~guess:(Option.get (Knowledge.next_guess k prng))
  done;
  Alcotest.(check bool) "exhausted yields None" true (Knowledge.next_guess k prng = None);
  (* a rekey refills the space: the attacker resumes *)
  Knowledge.on_target_rekeyed k;
  Alcotest.(check bool) "guessing resumes after rekey" true
    (Knowledge.next_guess k prng <> None)

let test_knowledge_confirmed_key_sticks () =
  let ks = Keyspace.of_size 50 in
  let k = Knowledge.create ks in
  let prng = Prng.create ~seed:3 in
  Knowledge.observe_intrusion k ~guess:42;
  Alcotest.(check bool) "known" true (Knowledge.known_key k = Some 42);
  Alcotest.(check bool) "reuses the key" true (Knowledge.next_guess k prng = Some 42);
  Knowledge.on_target_recovered k;
  Alcotest.(check bool) "recovery does not hide the key" true (Knowledge.known_key k = Some 42);
  Knowledge.on_target_rekeyed k;
  Alcotest.(check bool) "rekey voids it" true (Knowledge.known_key k = None);
  Alcotest.(check int) "eliminations void too" 0 (Knowledge.eliminated k)

let test_knowledge_dense_tail () =
  (* when few keys remain, the walk-based sampler must still be uniform-ish
     and fresh *)
  let ks = Keyspace.of_size 10 in
  let k = Knowledge.create ks in
  let prng = Prng.create ~seed:5 in
  for g = 0 to 7 do
    Knowledge.observe_crash k ~guess:g
  done;
  let g1 = Option.get (Knowledge.next_guess k prng) in
  Alcotest.(check bool) "one of the remaining two" true (g1 = 8 || g1 = 9)

(* ---- Derandomizer against the forking daemon ---- *)

let run_attack ~keys ~seed =
  let engine = Engine.create ~prng:(Prng.create ~seed) () in
  let ks = Keyspace.of_size keys in
  let instance = Instance.create ks (Engine.prng engine) in
  let daemon = Daemon.create engine ~instance in
  let result = ref None in
  Derandomizer.run ~engine ~daemon ~prng:(Prng.create ~seed:(seed + 1))
    ~on_done:(fun r -> result := Some r) ();
  Engine.run engine;
  (daemon, Option.get !result)

let test_derandomizer_finds_key () =
  let daemon, r = run_attack ~keys:64 ~seed:1 in
  (match r.Derandomizer.found_key with
  | Some key -> Alcotest.(check int) "found the actual key" (Instance.key (Daemon.instance daemon)) key
  | None -> Alcotest.fail "budget was the whole space");
  Alcotest.(check bool) "daemon compromised" true (Daemon.compromised daemon);
  Alcotest.(check int) "one crash per wrong probe" (r.Derandomizer.probes - 1)
    r.Derandomizer.crashes_caused

let test_derandomizer_probe_count_bounded () =
  let _, r = run_attack ~keys:64 ~seed:2 in
  Alcotest.(check bool) "at most the whole space" true (r.Derandomizer.probes <= 64);
  Alcotest.(check bool) "at least one probe" true (r.Derandomizer.probes >= 1)

let test_derandomizer_mean_near_half_space () =
  let total = ref 0 in
  let runs = 40 in
  for seed = 1 to runs do
    let _, r = run_attack ~keys:128 ~seed in
    total := !total + r.Derandomizer.probes
  done;
  let mean = float_of_int !total /. float_of_int runs in
  (* expected (chi+1)/2 = 64.5; allow generous sampling noise *)
  Alcotest.(check bool)
    (Printf.sprintf "mean probes %.1f near 64.5" mean)
    true
    (mean > 45.0 && mean < 85.0)

let test_derandomizer_budget_exhaustion () =
  let engine = Engine.create ~prng:(Prng.create ~seed:50) () in
  let ks = Keyspace.of_size 4096 in
  let instance = Instance.create ks (Engine.prng engine) in
  let daemon = Daemon.create engine ~instance in
  let result = ref None in
  Derandomizer.run ~engine ~daemon ~prng:(Prng.create ~seed:51) ~max_probes:3
    ~on_done:(fun r -> result := Some r) ();
  Engine.run engine;
  match !result with
  | Some r ->
      Alcotest.(check int) "stopped at budget" 3 r.Derandomizer.probes;
      Alcotest.(check bool) "likely not found" true (r.Derandomizer.found_key = None)
  | None -> Alcotest.fail "no result"

(* ---- Campaign against a live deployment ---- *)

let small_deployment ?(threshold = 10) ?(keys = 64) ?(seed = 3) () =
  Deployment.create
    {
      Deployment.default_config with
      keyspace = Keyspace.of_size keys;
      seed;
      proxy = { Fortress_core.Proxy.default_config with detection_threshold = threshold };
    }

let test_campaign_compromises_small_keyspace () =
  let d = small_deployment () in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let campaign =
    Campaign.launch d (Campaign.make_config ~omega:16 ~kappa:0.5 ~period:100.0 ~seed:0 ())
  in
  match Campaign.run_until_compromise campaign ~max_steps:500 with
  | Some step ->
      Alcotest.(check bool) "positive step" true (step >= 1);
      Alcotest.(check bool) "probes were sent" true
        ((Campaign.stats campaign).Campaign_intf.Stats.direct_probes_sent > 0)
  | None -> Alcotest.fail "with chi=64 and omega=16 compromise is near-certain"

let test_campaign_po_outlives_so () =
  (* same attacker, same chi: the SO system falls first on average *)
  let lifetime mode seed =
    let d = small_deployment ~keys:256 ~seed () in
    ignore (Obfuscation.attach d ~mode ~period:100.0);
    let campaign =
      Campaign.launch d
        (Campaign.make_config ~omega:8 ~kappa:0.5 ~period:100.0 ~target_mode:mode
           ~seed:(seed + 1000) ())
    in
    match Campaign.run_until_compromise campaign ~max_steps:2000 with
    | Some step -> step
    | None -> 2000
  in
  let total_po = ref 0 and total_so = ref 0 in
  for seed = 1 to 8 do
    total_po := !total_po + lifetime Obfuscation.PO seed;
    total_so := !total_so + lifetime Obfuscation.SO seed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "PO total %d vs SO total %d" !total_po !total_so)
    true (!total_po > !total_so)

let test_campaign_detection_reduces_effective_kappa () =
  let effective threshold =
    let d = small_deployment ~threshold ~keys:(1 lsl 14) () in
    ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
    let campaign =
      Campaign.launch d
        (Campaign.make_config ~omega:32 ~kappa:1.0 ~period:100.0 ~seed:17 ())
    in
    ignore (Campaign.run_until_compromise campaign ~max_steps:10);
    Campaign.effective_kappa campaign
  in
  Alcotest.(check bool) "tight threshold throttles harder" true
    (effective 2 < effective 1000)

let test_campaign_validates_config () =
  let d = small_deployment () in
  Alcotest.check_raises "omega" (Invalid_argument "Campaign.launch: omega must be positive")
    (fun () -> ignore (Campaign.launch d (Campaign.make_config ~omega:0 ~seed:0 ())));
  Alcotest.check_raises "kappa" (Invalid_argument "Campaign.launch: kappa in [0,1]") (fun () ->
      ignore (Campaign.launch d (Campaign.make_config ~kappa:1.5 ~seed:0 ())))

let test_campaign_deterministic_from_seed () =
  let outcome seed_pair =
    let deployment_seed, campaign_seed = seed_pair in
    let d = small_deployment ~keys:128 ~seed:deployment_seed () in
    ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
    let campaign =
      Campaign.launch d
        (Campaign.make_config ~omega:8 ~kappa:0.5 ~period:100.0 ~seed:campaign_seed ())
    in
    let step = Campaign.run_until_compromise campaign ~max_steps:300 in
    let stats = Campaign.stats campaign in
    ( step,
      stats.Campaign_intf.Stats.direct_probes_sent,
      stats.Campaign_intf.Stats.indirect_probes_sent )
  in
  Alcotest.(check bool) "same seeds, same execution" true
    (outcome (5, 9) = outcome (5, 9));
  Alcotest.(check bool) "different seeds diverge" true (outcome (5, 9) <> outcome (6, 9))

let test_campaign_no_proxies_attacks_servers () =
  let d =
    Deployment.create
      { Deployment.default_config with np = 0; keyspace = Keyspace.of_size 64; seed = 4 }
  in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let campaign =
    Campaign.launch d (Campaign.make_config ~omega:16 ~kappa:0.0 ~period:100.0 ~seed:0 ())
  in
  match Campaign.run_until_compromise campaign ~max_steps:200 with
  | Some _ ->
      Alcotest.(check int) "no indirect probes without proxies" 0
        (Campaign.stats campaign).Campaign_intf.Stats.indirect_probes_sent
  | None -> Alcotest.fail "bare S1 with chi=64 must fall quickly"

(* ---- Pacing ---- *)

let test_pacing_uniform_offsets () =
  let offsets = Pacing.offsets Pacing.Uniform ~budget:4 ~period:100.0 in
  Alcotest.(check int) "all slots" 4 (List.length offsets);
  List.iter
    (fun o -> Alcotest.(check bool) "strictly inside the step" true (o > 0.0 && o < 100.0))
    offsets;
  let sorted = List.sort compare offsets in
  Alcotest.(check bool) "increasing" true (sorted = offsets)

let test_pacing_burst_front_loaded () =
  let offsets = Pacing.offsets Pacing.Burst ~budget:10 ~period:100.0 in
  Alcotest.(check int) "all slots" 10 (List.length offsets);
  List.iter (fun o -> Alcotest.(check bool) "within first 1%" true (o <= 1.0)) offsets

let test_pacing_below_threshold_caps_budget () =
  (* threshold 10 per window 100, over a period 100: at most 10 probes *)
  let pacing = Pacing.Below_threshold { window = 100.0; threshold = 10 } in
  Alcotest.(check int) "capped" 10 (Pacing.effective_budget pacing ~budget:64 ~period:100.0);
  Alcotest.(check int) "uncapped when budget is small" 5
    (Pacing.effective_budget pacing ~budget:5 ~period:100.0);
  (* a longer period sustains proportionally more *)
  Alcotest.(check int) "scales with period" 20
    (Pacing.effective_budget pacing ~budget:64 ~period:200.0)

let test_pacing_effective_kappa () =
  let pacing = Pacing.Below_threshold { window = 100.0; threshold = 16 } in
  Alcotest.(check (float 1e-9)) "16 of 64" 0.25
    (Pacing.effective_kappa pacing ~omega:64 ~period:100.0);
  Alcotest.(check (float 1e-9)) "uniform is 1" 1.0
    (Pacing.effective_kappa Pacing.Uniform ~omega:64 ~period:100.0)

let test_pacing_string_roundtrip () =
  List.iter
    (fun p ->
      match Pacing.of_string (Pacing.to_string p) with
      | Some p' -> Alcotest.(check bool) "round-trips" true (p = p')
      | None -> Alcotest.fail "parse failed")
    [ Pacing.Uniform; Pacing.Burst; Pacing.Below_threshold { window = 50.0; threshold = 7 } ];
  Alcotest.(check bool) "junk rejected" true (Pacing.of_string "sideways" = None);
  Alcotest.(check bool) "bad numbers rejected" true (Pacing.of_string "below:x:3" = None)

let test_pacing_zero_threshold () =
  let pacing = Pacing.Below_threshold { window = 100.0; threshold = 0 } in
  Alcotest.(check int) "silent attacker" 0 (Pacing.effective_budget pacing ~budget:64 ~period:100.0);
  Alcotest.(check (list (float 0.0))) "no offsets" []
    (Pacing.offsets pacing ~budget:64 ~period:100.0)

let test_campaign_burst_pacing_still_works () =
  let d = small_deployment ~keys:64 ~seed:9 () in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let campaign =
    Campaign.launch d
      (Campaign.make_config ~omega:16 ~kappa:0.5 ~period:100.0 ~pacing:Pacing.Burst ~seed:0
         ())
  in
  match Campaign.run_until_compromise campaign ~max_steps:500 with
  | Some _ -> ()
  | None -> Alcotest.fail "burst campaign should still compromise chi=64"

let test_campaign_below_threshold_pacing_never_blocked () =
  (* the sliding window can straddle a step boundary, so the safe pace is
     half the threshold per step *)
  let d = small_deployment ~threshold:25 ~keys:(1 lsl 14) ~seed:21 () in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let campaign =
    Campaign.launch d
      (Campaign.make_config ~omega:32 ~kappa:1.0 ~period:100.0
         (* stay at 9 <= threshold probes per window per source *)
         ~pacing:(Pacing.Below_threshold { window = 100.0; threshold = 9 })
         ~seed:31 ())
  in
  ignore (Campaign.run_until_compromise campaign ~max_steps:10);
  Alcotest.(check int) "no source ever burned" 0
    (Campaign.stats campaign).Campaign_intf.Stats.sources_burned

(* ---- S0 campaign ---- *)

let s0_protocol_lifetime ?(stagger = true) ~chi ~omega ~seed ~max_steps () =
  let module SD = Fortress_core.Smr_deployment in
  let d =
    SD.create { SD.default_config with keyspace = Keyspace.of_size chi; seed }
  in
  ignore (SD.attach_schedule ~stagger d ~mode:Obfuscation.PO ~period:100.0);
  let c =
    Smr_campaign.launch d (Smr_campaign.make_config ~omega ~seed:(seed + 77) ())
  in
  Option.value ~default:max_steps (Smr_campaign.run_until_compromise c ~max_steps)

let s2_protocol_lifetime ~chi ~omega ~kappa ~seed ~max_steps =
  let d =
    Deployment.create
      {
        Deployment.default_config with
        keyspace = Keyspace.of_size chi;
        seed;
        proxy =
          { Fortress_core.Proxy.default_config with detection_threshold = max_int - 1 };
      }
  in
  ignore (Obfuscation.attach d ~mode:Obfuscation.PO ~period:100.0);
  let c =
    Campaign.launch d
      (Campaign.make_config ~omega ~kappa ~period:100.0 ~seed:(seed + 77) ())
  in
  Option.value ~default:max_steps (Campaign.run_until_compromise c ~max_steps)

let test_smr_campaign_compromises () =
  let lifetime = s0_protocol_lifetime ~chi:64 ~omega:16 ~seed:1 ~max_steps:500 () in
  Alcotest.(check bool) "falls within the horizon" true (lifetime < 500)

let test_smr_campaign_needs_two_intrusions () =
  let module SD = Fortress_core.Smr_deployment in
  let d = SD.create { SD.default_config with keyspace = Keyspace.of_size 64; seed = 2 } in
  ignore (SD.attach_schedule d ~mode:Obfuscation.PO ~period:100.0);
  let c = Smr_campaign.launch d (Smr_campaign.make_config ~omega:16 ~seed:5 ()) in
  (match Smr_campaign.run_until_compromise c ~max_steps:500 with
  | Some _ ->
      Alcotest.(check bool) "at least two intrusions landed" true
        ((Smr_campaign.stats c).Campaign_intf.Stats.intrusions >= 2)
  | None -> Alcotest.fail "chi=64 must fall");
  Alcotest.(check bool) "probes were spent" true
    (Campaign_intf.Stats.probes_sent (Smr_campaign.stats c) > 0)

let test_protocol_s0po_outlives_s2po () =
  (* the headline ordering at the packet level: diverse 4-replica SMR under
     PO outlives FORTRESS when the indirect channel is wide open *)
  let chi = 128 and omega = 8 and trials = 40 in
  let total f = List.init trials (fun i -> f (i + 1)) |> List.fold_left ( + ) 0 in
  let s0 = total (fun seed -> s0_protocol_lifetime ~chi ~omega ~seed ~max_steps:2000 ()) in
  let s2 =
    total (fun seed -> s2_protocol_lifetime ~chi ~omega ~kappa:1.0 ~seed ~max_steps:2000)
  in
  Alcotest.(check bool)
    (Printf.sprintf "S0PO total %d > S2PO total %d" s0 s2)
    true (s0 > s2)

let test_aligned_schedule_outlives_staggered () =
  (* V3's actionable finding: firing all recovery batches back-to-back at
     the boundary aligns the replicas' exposure windows, denying the
     attacker the sliding simultaneity window the staggered schedule
     leaks *)
  let chi = 128 and omega = 8 and trials = 40 in
  let total stagger =
    List.init trials (fun i ->
        s0_protocol_lifetime ~stagger ~chi ~omega ~seed:(i + 1) ~max_steps:3000 ())
    |> List.fold_left ( + ) 0
  in
  let staggered = total true and aligned = total false in
  Alcotest.(check bool)
    (Printf.sprintf "aligned total %d > staggered total %d" aligned staggered)
    true (aligned > staggered)

let test_smr_campaign_within_model_ballpark () =
  (* the staggered Roeder-Schneider schedule hands the attacker a sliding
     simultaneity window, so the measured lifetime sits below the
     aligned-step analytic value — but within a small constant factor *)
  let chi = 128 and omega = 8 and trials = 40 in
  let alpha = float_of_int omega /. float_of_int chi in
  let analytic = Fortress_model.Systems.s0_po ~alpha in
  let mean =
    float_of_int
      (List.init trials (fun i ->
           s0_protocol_lifetime ~chi ~omega ~seed:(i + 1) ~max_steps:2000 ())
      |> List.fold_left ( + ) 0)
    /. float_of_int trials
  in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.0f vs analytic %.0f within [0.3x, 1.3x]" mean analytic)
    true
    (mean > 0.3 *. analytic && mean < 1.3 *. analytic)

let () =
  Alcotest.run "fortress_attack"
    [
      ( "knowledge",
        [
          Alcotest.test_case "elimination accounting" `Quick test_knowledge_elimination;
          Alcotest.test_case "never repeats a guess" `Quick test_knowledge_never_repeats;
          Alcotest.test_case "exhaustion graceful" `Quick test_knowledge_exhaustion_graceful;
          Alcotest.test_case "confirmed key semantics" `Quick test_knowledge_confirmed_key_sticks;
          Alcotest.test_case "dense tail sampling" `Quick test_knowledge_dense_tail;
        ] );
      ( "derandomizer",
        [
          Alcotest.test_case "finds the key" `Quick test_derandomizer_finds_key;
          Alcotest.test_case "probe count bounded" `Quick test_derandomizer_probe_count_bounded;
          Alcotest.test_case "mean near half the space" `Slow test_derandomizer_mean_near_half_space;
          Alcotest.test_case "budget exhaustion" `Quick test_derandomizer_budget_exhaustion;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "compromises small key space" `Quick
            test_campaign_compromises_small_keyspace;
          Alcotest.test_case "PO outlives SO" `Slow test_campaign_po_outlives_so;
          Alcotest.test_case "detection reduces kappa" `Quick
            test_campaign_detection_reduces_effective_kappa;
          Alcotest.test_case "config validation" `Quick test_campaign_validates_config;
          Alcotest.test_case "np=0 attacks servers" `Quick test_campaign_no_proxies_attacks_servers;
          Alcotest.test_case "deterministic from seed" `Quick test_campaign_deterministic_from_seed;
          Alcotest.test_case "burst pacing" `Quick test_campaign_burst_pacing_still_works;
          Alcotest.test_case "below-threshold pacing evades" `Quick
            test_campaign_below_threshold_pacing_never_blocked;
        ] );
      ( "smr-campaign",
        [
          Alcotest.test_case "compromises S0" `Quick test_smr_campaign_compromises;
          Alcotest.test_case "needs two intrusions" `Quick test_smr_campaign_needs_two_intrusions;
          Alcotest.test_case "S0PO outlives S2PO at packet level" `Slow
            test_protocol_s0po_outlives_s2po;
          Alcotest.test_case "within model ballpark" `Slow test_smr_campaign_within_model_ballpark;
          Alcotest.test_case "aligned schedule beats staggered" `Slow
            test_aligned_schedule_outlives_staggered;
        ] );
      ( "pacing",
        [
          Alcotest.test_case "uniform offsets" `Quick test_pacing_uniform_offsets;
          Alcotest.test_case "burst front-loaded" `Quick test_pacing_burst_front_loaded;
          Alcotest.test_case "below-threshold caps budget" `Quick
            test_pacing_below_threshold_caps_budget;
          Alcotest.test_case "effective kappa" `Quick test_pacing_effective_kappa;
          Alcotest.test_case "string round-trip" `Quick test_pacing_string_roundtrip;
          Alcotest.test_case "zero threshold" `Quick test_pacing_zero_threshold;
        ] );
    ]
