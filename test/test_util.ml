open Fortress_util

let check_float = Alcotest.(check (float 1e-9))
let check_close tolerance = Alcotest.(check (float tolerance))

(* ---- Prng ---- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different streams" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.copy a in
  let va = Prng.bits64 a in
  let vb = Prng.bits64 b in
  Alcotest.(check int64) "copy resumes identically" va vb

let test_prng_split_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.bits64 a) in
  let ys = List.init 50 (fun _ -> Prng.bits64 b) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let test_prng_int_bounds () =
  let p = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Prng.int p ~bound:17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_invalid () =
  let p = Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int p ~bound:0))

let test_prng_int_in_range () =
  let p = Prng.create ~seed:5 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in_range p ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_prng_float_range () =
  let p = Prng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let v = Prng.float p in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_mean () =
  let p = Prng.create ~seed:11 in
  let n = 100_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.float p
  done;
  check_close 0.01 "mean near 0.5" 0.5 (!acc /. float_of_int n)

let test_prng_bernoulli_extremes () =
  let p = Prng.create ~seed:1 in
  Alcotest.(check bool) "p=0 false" false (Prng.bernoulli p ~p:0.0);
  Alcotest.(check bool) "p=1 true" true (Prng.bernoulli p ~p:1.0)

let test_prng_bernoulli_rate () =
  let p = Prng.create ~seed:13 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.bernoulli p ~p:0.3 then incr hits
  done;
  check_close 0.01 "rate near 0.3" 0.3 (float_of_int !hits /. float_of_int n)

let test_prng_geometric_mean () =
  let p = Prng.create ~seed:17 in
  let n = 50_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Prng.geometric p ~p:0.25
  done;
  (* mean of failures-before-success is (1-p)/p = 3 *)
  check_close 0.15 "geometric mean" 3.0 (float_of_int !acc /. float_of_int n)

let test_prng_exponential_mean () =
  let p = Prng.create ~seed:19 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Prng.exponential p ~rate:2.0
  done;
  check_close 0.02 "exp mean 1/rate" 0.5 (!acc /. float_of_int n)

let test_prng_shuffle_permutation () =
  let p = Prng.create ~seed:23 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_prng_sample_without_replacement () =
  let p = Prng.create ~seed:29 in
  for _ = 1 to 200 do
    let s = Prng.sample_without_replacement p ~k:10 ~n:30 in
    Alcotest.(check int) "k elements" 10 (Array.length s);
    let distinct = List.sort_uniq compare (Array.to_list s) in
    Alcotest.(check int) "distinct" 10 (List.length distinct);
    Array.iter (fun v -> Alcotest.(check bool) "in range" true (v >= 0 && v < 30)) s
  done

let test_prng_sample_full () =
  let p = Prng.create ~seed:31 in
  let s = Prng.sample_without_replacement p ~k:5 ~n:5 in
  let sorted = List.sort compare (Array.to_list s) in
  Alcotest.(check (list int)) "whole population" [ 0; 1; 2; 3; 4 ] sorted

(* ---- Stats ---- *)

let test_stats_mean_var () =
  let t = Stats.create () in
  List.iter (Stats.add t) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.mean t);
  check_float "variance" (32.0 /. 7.0) (Stats.variance t);
  check_float "min" 2.0 (Stats.min t);
  check_float "max" 9.0 (Stats.max t);
  check_float "total" 40.0 (Stats.total t)

let test_stats_empty () =
  let t = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean t));
  Alcotest.(check int) "count" 0 (Stats.count t)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add whole) (xs @ ys);
  let m = Stats.merge a b in
  check_float "merged mean" (Stats.mean whole) (Stats.mean m);
  check_float "merged var" (Stats.variance whole) (Stats.variance m);
  Alcotest.(check int) "merged count" (Stats.count whole) (Stats.count m)

let test_stats_merge_empty () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add b 5.0;
  let m = Stats.merge a b in
  check_float "mean from non-empty side" 5.0 (Stats.mean m)

(* combine is the parallel-join primitive: a sequential accumulation over
   the whole dataset and a fold of per-chunk accumulators must agree on
   every derived statistic, including the confidence interval. *)
let test_stats_combine_parallel_join () =
  let chunks =
    [ [ 3.0; 1.0; 4.0; 1.0; 5.0 ]; [ 9.0; 2.0; 6.0 ]; [ 5.0; 3.0; 5.0; 8.0; 9.0; 7.0 ] ]
  in
  let whole = Stats.create () in
  List.iter (List.iter (Stats.add whole)) chunks;
  let parts =
    List.map
      (fun xs ->
        let s = Stats.create () in
        List.iter (Stats.add s) xs;
        s)
      chunks
  in
  let folded = List.fold_left Stats.combine (Stats.create ()) parts in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count folded);
  check_float "mean" (Stats.mean whole) (Stats.mean folded);
  check_float "variance" (Stats.variance whole) (Stats.variance folded);
  check_float "total" (Stats.total whole) (Stats.total folded);
  check_float "min" (Stats.min whole) (Stats.min folded);
  check_float "max" (Stats.max whole) (Stats.max folded);
  let lo, hi = Stats.confidence_interval whole in
  let lo', hi' = Stats.confidence_interval folded in
  check_float "ci95 lo" lo lo';
  check_float "ci95 hi" hi hi'

let test_stats_combine_does_not_mutate () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 10.0 ];
  ignore (Stats.combine a b);
  Alcotest.(check int) "a count untouched" 2 (Stats.count a);
  Alcotest.(check int) "b count untouched" 1 (Stats.count b);
  check_float "a mean untouched" 1.5 (Stats.mean a)

let test_stats_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "q0" 1.0 (Stats.quantile xs ~q:0.0);
  check_float "q1" 5.0 (Stats.quantile xs ~q:1.0);
  check_float "q interpolation" 1.5 (Stats.quantile [| 1.0; 2.0 |] ~q:0.5)

let test_stats_quantile_unsorted () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "median of unsorted" 3.0 (Stats.median xs)

let test_stats_summary () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let s = Stats.summarize xs in
  Alcotest.(check int) "n" 101 s.Stats.n;
  check_float "mean" 50.0 s.Stats.mean;
  check_float "median" 50.0 s.Stats.median;
  check_float "p25" 25.0 s.Stats.p25;
  Alcotest.(check bool) "ci contains mean" true
    (s.Stats.ci95_lo <= s.Stats.mean && s.Stats.mean <= s.Stats.ci95_hi)

let test_stats_ci_shrinks () =
  let interval xs =
    let t = Stats.create () in
    Array.iter (Stats.add t) xs;
    let lo, hi = Stats.confidence_interval t in
    hi -. lo
  in
  let p = Prng.create ~seed:37 in
  let draw n = Array.init n (fun _ -> Prng.float p) in
  Alcotest.(check bool) "wider with fewer samples" true (interval (draw 100) > interval (draw 10_000))

(* ---- Histogram ---- *)

let test_histogram_linear () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -1.0; 10.0; 25.0 ];
  Alcotest.(check int) "count includes out of range" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "bin 0" 1 (Histogram.bin_value h 0);
  Alcotest.(check int) "bin 1" 2 (Histogram.bin_value h 1);
  Alcotest.(check int) "bin 9" 1 (Histogram.bin_value h 9)

let test_histogram_edges () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:10.0 ~bins:5 in
  let lo, hi = Histogram.bin_edges h 0 in
  check_float "first bin lo" 0.0 lo;
  check_float "first bin hi" 2.0 hi

let test_histogram_log () =
  let h = Histogram.create_log ~lo:1.0 ~hi:1000.0 ~bins:3 in
  List.iter (Histogram.add h) [ 2.0; 50.0; 500.0 ];
  Alcotest.(check int) "decade bins" 1 (Histogram.bin_value h 0);
  Alcotest.(check int) "decade bins" 1 (Histogram.bin_value h 1);
  Alcotest.(check int) "decade bins" 1 (Histogram.bin_value h 2)

let test_histogram_fraction () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:2 in
  List.iter (Histogram.add h) [ 0.1; 0.2; 0.8 ];
  check_float "fraction" (2.0 /. 3.0) (Histogram.fraction h 0)

let test_histogram_render () =
  let h = Histogram.create_linear ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h 0.1;
  let s = Histogram.render h in
  Alcotest.(check bool) "has a bar" true (String.contains s '#')

(* ---- Matrix ---- *)

let test_matrix_identity_mul () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Matrix.identity 2 in
  Alcotest.(check bool) "a * I = a" true (Matrix.equal (Matrix.mul a i) a);
  Alcotest.(check bool) "I * a = a" true (Matrix.equal (Matrix.mul i a) a)

let test_matrix_mul_known () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let expected = Matrix.of_rows [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |] in
  Alcotest.(check bool) "product" true (Matrix.equal (Matrix.mul a b) expected)

let test_matrix_transpose () =
  let a = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let at = Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Matrix.rows at);
  check_float "entry" 2.0 (Matrix.get at 1 0)

let test_matrix_solve () =
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matrix.solve a [| 5.0; 10.0 |] in
  check_float "x0" 1.0 x.(0);
  check_float "x1" 3.0 x.(1)

let test_matrix_solve_permuted () =
  (* forces pivoting: zero on the diagonal *)
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Matrix.solve a [| 7.0; 9.0 |] in
  check_float "x0" 9.0 x.(0);
  check_float "x1" 7.0 x.(1)

let test_matrix_inverse_roundtrip () =
  let a = Matrix.of_rows [| [| 4.0; 7.0; 1.0 |]; [| 2.0; 6.0; 0.5 |]; [| 1.0; 1.0; 3.0 |] |] in
  let inv = Matrix.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Matrix.equal ~eps:1e-8 (Matrix.mul a inv) (Matrix.identity 3))

let test_matrix_singular () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  match Matrix.inverse a with
  | _ -> Alcotest.fail "singular matrix inverted"
  | exception Matrix.Singular { dim; col } ->
      Alcotest.(check int) "dim carried" 2 dim;
      Alcotest.(check bool) "col in range" true (col >= 0 && col < 2)

let test_matrix_apply () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let v = Matrix.apply a [| 1.0; 1.0 |] in
  check_float "row 0" 3.0 v.(0);
  check_float "row 1" 7.0 v.(1);
  let u = Matrix.apply_left [| 1.0; 1.0 |] a in
  check_float "col 0" 4.0 u.(0);
  check_float "col 1" 6.0 u.(1)

let test_matrix_row_sums () =
  let a = Matrix.of_rows [| [| 0.25; 0.75 |]; [| 0.5; 0.5 |] |] in
  let sums = Matrix.row_sums a in
  check_float "stochastic row" 1.0 sums.(0);
  check_float "stochastic row" 1.0 sums.(1)

let test_matrix_dim_mismatch () =
  let a = Matrix.make ~rows:2 ~cols:3 0.0 in
  let b = Matrix.make ~rows:2 ~cols:3 0.0 in
  Alcotest.check_raises "mul mismatch" (Invalid_argument "Matrix.mul: dimension mismatch")
    (fun () -> ignore (Matrix.mul a b))

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~headers:[ "alpha"; "EL" ] in
  Table.add_row t [ "0.001"; "1000" ];
  Table.add_row t [ "0.01"; "100" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true
    (String.length s > 0 && String.sub s 0 5 = "alpha");
  Alcotest.(check int) "rows" 2 (Table.row_count t)

let test_table_width_check () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Alcotest.check_raises "bad width" (Invalid_argument "Table.add_row: wrong number of cells")
    (fun () -> Table.add_row t [ "only-one" ])

let test_table_csv () =
  let t = Table.create ~headers:[ "k"; "v" ] in
  Table.add_row t [ "x,y"; "1" ];
  let csv = Table.to_csv t in
  Alcotest.(check string) "csv" "k,v\n\"x,y\",1\n" csv

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_float_row () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_float_row t [ 0.5; 100.0 ];
  let s = Table.render t in
  Alcotest.(check bool) "contains formatted values" true
    (contains_substring s "0.5" && contains_substring s "100")

(* ---- Probability ---- *)

let test_prob_complement_product () =
  check_float "single" 0.5 (Probability.complement_product [ 0.5 ]);
  check_float "pair" 0.75 (Probability.complement_product [ 0.5; 0.5 ]);
  check_float "with certain event" 1.0 (Probability.complement_product [ 0.1; 1.0 ]);
  check_float "empty" 0.0 (Probability.complement_product [])

let test_prob_binomial () =
  check_float "pmf k=0" 0.25 (Probability.binomial_pmf ~k:0 ~p:0.5 ~n:2);
  check_float "pmf k=1" 0.5 (Probability.binomial_pmf ~k:1 ~p:0.5 ~n:2);
  check_float "pmf beyond n" 0.0 (Probability.binomial_pmf ~k:3 ~p:0.5 ~n:2);
  check_float "p=0" 1.0 (Probability.binomial_pmf ~k:0 ~p:0.0 ~n:5);
  check_float "p=1" 1.0 (Probability.binomial_pmf ~k:5 ~p:1.0 ~n:5)

let test_prob_at_least () =
  check_float "k=0 always" 1.0 (Probability.at_least ~k:0 ~p:0.1 ~n:4);
  check_float "k>n never" 0.0 (Probability.at_least ~k:5 ~p:0.9 ~n:4);
  (* P(X>=1) = 1 - (1-p)^n *)
  check_float "k=1" (1.0 -. (0.9 ** 4.0)) (Probability.at_least ~k:1 ~p:0.1 ~n:4);
  (* S0's per-step law: P(X>=2) among 4 *)
  let p = 0.1 in
  let expected = 1.0 -. ((1.0 -. p) ** 4.0) -. (4.0 *. p *. ((1.0 -. p) ** 3.0)) in
  check_float "k=2 of 4" expected (Probability.at_least ~k:2 ~p ~n:4)

let test_prob_geometric_lifetime () =
  check_float "EL=1/p" 100.0 (Probability.geometric_lifetime 0.01);
  Alcotest.(check bool) "p=0 infinite" true (Probability.geometric_lifetime 0.0 = infinity)

let test_prob_expected_lifetime_constant () =
  let el = Probability.expected_lifetime (fun _ -> 0.01) in
  check_close 1e-6 "matches geometric closed form" 100.0 el

let test_prob_expected_lifetime_increasing_hazard () =
  (* certain compromise at step 3 *)
  let hazard i = if i >= 3 then 1.0 else 0.0 in
  check_float "EL = 3" 3.0 (Probability.expected_lifetime hazard)

let test_prob_expected_lifetime_mixture () =
  (* h1 = 0.5, then certain at step 2: EL = 0.5*1 + 0.5*2 = 1.5 *)
  let hazard i = if i = 1 then 0.5 else 1.0 in
  check_float "mixture" 1.5 (Probability.expected_lifetime hazard)

let test_prob_survival () =
  let hazard _ = 0.1 in
  check_close 1e-12 "survival product" (0.9 ** 3.0) (Probability.survival hazard 3)

let test_prob_clamp () =
  check_float "clamp low" 0.0 (Probability.clamp01 (-1.0));
  check_float "clamp high" 1.0 (Probability.clamp01 2.0);
  check_float "clamp id" 0.25 (Probability.clamp01 0.25)

(* ---- Plot ---- *)

let test_plot_basic_render () =
  let p = Plot.create ~x_label:"alpha" ~y_label:"EL" () in
  Plot.add_series p ~name:"s1" ~glyph:'a' [ (1e-4, 1e4); (1e-3, 1e3); (1e-2, 1e2) ];
  let s = Plot.render p in
  Alcotest.(check bool) "contains glyph" true (String.contains s 'a');
  Alcotest.(check bool) "contains legend" true (contains_substring s "s1");
  Alcotest.(check bool) "contains axis label" true (contains_substring s "alpha")

let test_plot_multi_series () =
  let p = Plot.create () in
  Plot.add_series p ~name:"one" ~glyph:'x' [ (1.0, 1.0); (10.0, 10.0) ];
  Plot.add_series p ~name:"two" ~glyph:'y' [ (1.0, 10.0); (10.0, 1.0) ];
  let s = Plot.render p in
  Alcotest.(check bool) "both glyphs" true (String.contains s 'x' && String.contains s 'y')

let test_plot_duplicate_glyph () =
  let p = Plot.create () in
  Plot.add_series p ~name:"one" ~glyph:'x' [ (1.0, 1.0) ];
  Alcotest.check_raises "duplicate" (Invalid_argument "Plot.add_series: duplicate glyph")
    (fun () -> Plot.add_series p ~name:"two" ~glyph:'x' [ (2.0, 2.0) ])

let test_plot_empty_series () =
  let p = Plot.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Plot.add_series: empty series") (fun () ->
      Plot.add_series p ~name:"none" ~glyph:'z' [])

let test_plot_log_skips_nonpositive () =
  let p = Plot.create () in
  Plot.add_series p ~name:"mixed" ~glyph:'m' [ (-1.0, 5.0); (0.0, 5.0); (2.0, 5.0) ];
  (* renders using only the positive point *)
  let s = Plot.render p in
  Alcotest.(check bool) "renders" true (String.contains s 'm')

let test_plot_all_nonpositive_fails () =
  let p = Plot.create () in
  Plot.add_series p ~name:"bad" ~glyph:'b' [ (-1.0, -1.0) ];
  Alcotest.check_raises "nothing drawable" (Failure "Plot.render: nothing to draw") (fun () ->
      ignore (Plot.render p))

let test_plot_linear_scale () =
  let p = Plot.create ~x_scale:Plot.Linear_scale ~y_scale:Plot.Linear_scale () in
  Plot.add_series p ~name:"neg ok" ~glyph:'n' [ (-5.0, -5.0); (5.0, 5.0) ];
  Alcotest.(check bool) "negative values drawable on linear axes" true
    (String.contains (Plot.render p) 'n')

(* ---- qcheck properties ---- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~name:"prng int always in bounds" ~count:500
      (pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let p = Prng.create ~seed in
        let v = Prng.int p ~bound in
        v >= 0 && v < bound);
    Test.make ~name:"quantile within min-max" ~count:200
      (pair (list_of_size (Gen.int_range 1 50) (float_range (-100.) 100.)) (float_range 0.0 1.0))
      (fun (xs, q) ->
        let a = Array.of_list xs in
        let v = Stats.quantile a ~q in
        let lo = Array.fold_left Float.min infinity a in
        let hi = Array.fold_left Float.max neg_infinity a in
        v >= lo -. 1e-9 && v <= hi +. 1e-9);
    Test.make ~name:"matrix solve then multiply round-trips" ~count:100
      (list_of_size (Gen.return 9) (float_range (-10.) 10.))
      (fun cells ->
        assume (List.length cells = 9);
        let a =
          Matrix.init ~rows:3 ~cols:3 (fun i j ->
              List.nth cells ((3 * i) + j) +. if i = j then 20.0 else 0.0)
        in
        let b = [| 1.0; 2.0; 3.0 |] in
        let x = Matrix.solve a b in
        let back = Matrix.apply a x in
        Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-6) back b);
    Test.make ~name:"complement_product in [0,1]" ~count:300
      (list (float_range 0.0 1.0))
      (fun ps ->
        let v = Probability.complement_product ps in
        v >= 0.0 && v <= 1.0);
    Test.make ~name:"expected lifetime of constant hazard is 1/p" ~count:100
      (float_range 0.001 0.9)
      (fun p ->
        let el = Probability.expected_lifetime (fun _ -> p) in
        Float.abs (el -. (1.0 /. p)) /. (1.0 /. p) < 1e-6);
    Test.make ~name:"merge equals bulk accumulate" ~count:200
      (pair (list (float_range (-50.) 50.)) (list (float_range (-50.) 50.)))
      (fun (xs, ys) ->
        assume (xs <> [] && ys <> []);
        let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
        List.iter (Stats.add a) xs;
        List.iter (Stats.add b) ys;
        List.iter (Stats.add whole) (xs @ ys);
        let m = Stats.merge a b in
        Float.abs (Stats.mean m -. Stats.mean whole) < 1e-9);
  ]

let () =
  Alcotest.run "fortress_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic from seed" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy is independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split is independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_prng_int_invalid;
          Alcotest.test_case "int_in_range" `Quick test_prng_int_in_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "float mean" `Quick test_prng_float_mean;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli_rate;
          Alcotest.test_case "geometric mean" `Quick test_prng_geometric_mean;
          Alcotest.test_case "exponential mean" `Quick test_prng_exponential_mean;
          Alcotest.test_case "shuffle keeps elements" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_prng_sample_without_replacement;
          Alcotest.test_case "sample full population" `Quick test_prng_sample_full;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean and variance" `Quick test_stats_mean_var;
          Alcotest.test_case "empty accumulator" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
          Alcotest.test_case "merge with empty" `Quick test_stats_merge_empty;
          Alcotest.test_case "combine is a parallel join" `Quick
            test_stats_combine_parallel_join;
          Alcotest.test_case "combine mutates neither input" `Quick
            test_stats_combine_does_not_mutate;
          Alcotest.test_case "quantiles" `Quick test_stats_quantile;
          Alcotest.test_case "quantile unsorted input" `Quick test_stats_quantile_unsorted;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "ci shrinks with n" `Quick test_stats_ci_shrinks;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "linear binning" `Quick test_histogram_linear;
          Alcotest.test_case "bin edges" `Quick test_histogram_edges;
          Alcotest.test_case "log binning" `Quick test_histogram_log;
          Alcotest.test_case "fractions" `Quick test_histogram_fraction;
          Alcotest.test_case "render" `Quick test_histogram_render;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity multiply" `Quick test_matrix_identity_mul;
          Alcotest.test_case "known product" `Quick test_matrix_mul_known;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "solve 2x2" `Quick test_matrix_solve;
          Alcotest.test_case "solve needs pivoting" `Quick test_matrix_solve_permuted;
          Alcotest.test_case "inverse round-trip" `Quick test_matrix_inverse_roundtrip;
          Alcotest.test_case "singular detection" `Quick test_matrix_singular;
          Alcotest.test_case "apply vectors" `Quick test_matrix_apply;
          Alcotest.test_case "row sums" `Quick test_matrix_row_sums;
          Alcotest.test_case "dimension mismatch" `Quick test_matrix_dim_mismatch;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width check" `Quick test_table_width_check;
          Alcotest.test_case "csv escaping" `Quick test_table_csv;
          Alcotest.test_case "float rows" `Quick test_table_float_row;
        ] );
      ( "plot",
        [
          Alcotest.test_case "basic render" `Quick test_plot_basic_render;
          Alcotest.test_case "multiple series" `Quick test_plot_multi_series;
          Alcotest.test_case "duplicate glyph" `Quick test_plot_duplicate_glyph;
          Alcotest.test_case "empty series" `Quick test_plot_empty_series;
          Alcotest.test_case "log skips non-positive" `Quick test_plot_log_skips_nonpositive;
          Alcotest.test_case "nothing drawable" `Quick test_plot_all_nonpositive_fails;
          Alcotest.test_case "linear scale" `Quick test_plot_linear_scale;
        ] );
      ( "probability",
        [
          Alcotest.test_case "complement product" `Quick test_prob_complement_product;
          Alcotest.test_case "binomial pmf" `Quick test_prob_binomial;
          Alcotest.test_case "at_least" `Quick test_prob_at_least;
          Alcotest.test_case "geometric lifetime" `Quick test_prob_geometric_lifetime;
          Alcotest.test_case "EL constant hazard" `Quick test_prob_expected_lifetime_constant;
          Alcotest.test_case "EL step hazard" `Quick test_prob_expected_lifetime_increasing_hazard;
          Alcotest.test_case "EL mixture" `Quick test_prob_expected_lifetime_mixture;
          Alcotest.test_case "survival" `Quick test_prob_survival;
          Alcotest.test_case "clamp" `Quick test_prob_clamp;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
